package htm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/prng"
)

// Tests for the non-default conflict backends: the HMTRace-style owner-tag
// scheme (tagBackend) and the FORTH-style entry-capped sets (boundedBackend),
// plus the backend selection seam itself.

func tagConfig() Config {
	cfg := DefaultConfig()
	cfg.Backend = "tag"
	return cfg
}

func boundedConfig(rcap, wcap int) Config {
	cfg := DefaultConfig()
	cfg.Backend = "bounded"
	cfg.BoundedReadCap, cfg.BoundedWriteCap = rcap, wcap
	return cfg
}

func TestBackendNames(t *testing.T) {
	for _, name := range append(BackendNames(), "") {
		if !ValidBackend(name) {
			t.Fatalf("ValidBackend(%q) = false, want true", name)
		}
	}
	if ValidBackend("hashset") {
		t.Fatal(`ValidBackend("hashset") = true, want false`)
	}
	for _, name := range BackendNames() {
		cfg := DefaultConfig()
		cfg.Backend = name
		if got := New(cfg).Backend(); got != name {
			t.Fatalf("Backend() = %q, want %q", got, name)
		}
	}
}

func TestUnknownBackendPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New with unknown backend must panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "hashset") || !strings.Contains(msg, "dir, tag, bounded") {
			t.Fatalf("panic message %q must name the bad value and the valid set", msg)
		}
	}()
	cfg := DefaultConfig()
	cfg.Backend = "hashset"
	New(cfg)
}

func TestRefScanRequiresDirBackend(t *testing.T) {
	for _, backend := range []string{"tag", "bounded"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New with RefScan under %q backend must panic", backend)
				}
			}()
			cfg := DefaultConfig()
			cfg.Backend = backend
			cfg.RefScan = true
			New(cfg)
		}()
	}
}

// TestTagConflictBasics pins the tag conflict test: between transactions,
// ANY live-tag mismatch conflicts — write/read, read/write, and read/read
// (the steal that would erase the owner's conflict evidence). The tag owner
// is doomed under requester-wins.
func TestTagConflictBasics(t *testing.T) {
	for _, tc := range []struct {
		name                 string
		ownerWrite, reqWrite bool
	}{
		{"write/read", true, false},
		{"read/write", false, true},
		{"read/read", false, false},
		{"write/write", true, true},
	} {
		h := New(tagConfig())
		h.Begin(0)
		h.Begin(1)
		h.Access(0, 0x1000, tc.ownerWrite)
		h.Access(1, 0x1000, tc.reqWrite)
		if s, ok := h.Pending(0); !ok || !s.Is(StatusConflict) {
			t.Fatalf("%s: Pending(0) = (%v, %v), want conflict", tc.name, s, ok)
		}
		if _, ok := h.Pending(1); ok {
			t.Fatalf("%s: requester doomed under requester-wins", tc.name)
		}
	}

	// Re-touching one's own tag is never a conflict.
	h := New(tagConfig())
	h.Begin(0)
	h.Access(0, 0x1000, false)
	h.Access(0, 0x1000, true)
	h.Access(0, 0x1000, false)
	if _, ok := h.Pending(0); ok {
		t.Fatal("own-tag re-touch fabricated a conflict")
	}
}

// TestTagStaleEpoch pins epoch filtering: a tag left by a committed
// transaction is dead once the slot's epoch moves on, even though the tag
// bytes still name the slot.
func TestTagStaleEpoch(t *testing.T) {
	h := New(tagConfig())
	h.Begin(0)
	h.Access(0, 0x3000, true)
	if _, ok := h.Commit(0); !ok {
		t.Fatal("solo transaction failed to commit")
	}
	// Same thread begins again: same slot, bumped epoch; the 0x3000 tag is
	// now stale and must not conflict with anyone.
	h.Begin(0)
	h.Begin(1)
	h.Access(1, 0x3000, true)
	if _, ok := h.Pending(0); ok {
		t.Fatal("stale-epoch tag fabricated a conflict")
	}
	if _, ok := h.Pending(1); ok {
		t.Fatal("stale-epoch tag doomed the requester")
	}
}

// TestTagNonTxStrongIsolation pins strong isolation under tags: a plain
// access from a non-transactional thread dooms a conflicting live owner but
// never re-tags the line.
func TestTagNonTxStrongIsolation(t *testing.T) {
	h := New(tagConfig())
	h.Begin(0)
	h.Access(0, 0x4000, true)
	h.Access(7, 0x4000, false) // thread 7 is not in a transaction
	if s, ok := h.Pending(0); !ok || !s.Is(StatusConflict) {
		t.Fatalf("non-tx read vs tx write: Pending(0) = (%v, %v), want conflict", s, ok)
	}
	h.Resolve(0)
	// The line must not carry thread 7's tag: a fresh writer sees no owner.
	h.Begin(2)
	h.Access(2, 0x4000, true)
	if _, ok := h.Pending(2); ok {
		t.Fatal("non-transactional access left a tag behind")
	}
}

// TestTagNoCapacityAborts pins the scheme's headline property: with no
// footprint tracking there are no capacity aborts, at any footprint size.
func TestTagNoCapacityAborts(t *testing.T) {
	h := New(tagConfig())
	h.Begin(0)
	for i := 0; i < 4096; i++ { // far beyond any set-associative geometry
		h.Access(0, memmodel.Addr(uint64(i)<<memmodel.LineShift), i&1 == 0)
	}
	if n := h.ReadSetSize(0); n != 0 {
		t.Fatalf("tag backend ReadSetSize = %d, want 0 (no sets)", n)
	}
	if n := h.WriteSetSize(0); n != 0 {
		t.Fatalf("tag backend WriteSetSize = %d, want 0 (no sets)", n)
	}
	if _, ok := h.Commit(0); !ok {
		t.Fatal("huge-footprint transaction aborted under the tag backend")
	}
	if st := h.BackendStats(); st.Lines == 0 || st.Checks == 0 {
		t.Fatalf("tag stats not folding: %+v", st)
	}
}

// TestTagEpochWrapFalseConflict manufactures the tag-reuse hazard: with a
// 1-bit epoch, a tag from transaction N of a slot aliases transaction N+2,
// so a long-dead write fabricates a conflict. The simulator's unmasked
// shadow epoch must classify it as TagFalse.
func TestTagEpochWrapFalseConflict(t *testing.T) {
	cfg := tagConfig()
	cfg.TagEpochBits = 1
	h := New(cfg)

	h.Begin(0) // slot epoch 1 (masked 1)
	h.Access(0, 0x5000, true)
	h.Commit(0)
	h.Begin(0) // epoch 2 (masked 0: recycled)
	h.Commit(0)
	h.Begin(0) // epoch 3 (masked 1: aliases the 0x5000 tag)

	if st := h.BackendStats(); st.TagRecycled == 0 {
		t.Fatalf("epoch wrap not counted: %+v", st)
	}
	// Thread 1 writes the stale line: the tag's masked epoch matches slot
	// 0's live epoch, so the backend must (wrongly, per ground truth) doom
	// t0 and count the alias.
	h.Begin(1)
	h.Access(1, 0x5000, true)
	if s, ok := h.Pending(0); !ok || !s.Is(StatusConflict) {
		t.Fatalf("aliased tag did not conflict: Pending(0) = (%v, %v)", s, ok)
	}
	if st := h.BackendStats(); st.TagFalse != 1 {
		t.Fatalf("TagFalse = %d, want 1 (%+v)", st.TagFalse, st)
	}
}

// TestTagWriteTagNotDowngraded pins that a transaction re-reading its own
// written line keeps the write tag, so a later reader still conflicts.
func TestTagWriteTagNotDowngraded(t *testing.T) {
	h := New(tagConfig())
	h.Begin(0)
	h.Access(0, 0x6000, true)
	h.Access(0, 0x6000, false) // own read must not downgrade the write tag
	h.Begin(1)
	h.Access(1, 0x6000, false)
	if s, ok := h.Pending(0); !ok || !s.Is(StatusConflict) {
		t.Fatalf("own-read downgraded the write tag: Pending(0) = (%v, %v)", s, ok)
	}
}

// TestBoundedOverflow pins the hard cap: entry cap+1 distinct lines on one
// side dooms the transaction with StatusCapacity and counts one overflow,
// and the doom releases every directory claim.
func TestBoundedOverflow(t *testing.T) {
	h := New(boundedConfig(4, 3))
	h.Begin(0)
	for i := 0; i < 3; i++ {
		h.Access(0, memmodel.Addr(uint64(i)<<memmodel.LineShift), true)
	}
	if _, ok := h.Pending(0); ok {
		t.Fatal("doomed before the write cap was exceeded")
	}
	if n := h.WriteSetSize(0); n != 3 {
		t.Fatalf("WriteSetSize = %d, want 3", n)
	}
	h.Access(0, memmodel.Addr(uint64(3)<<memmodel.LineShift), true)
	if s, ok := h.Pending(0); !ok || !s.Is(StatusCapacity) {
		t.Fatalf("cap+1 write: Pending(0) = (%v, %v), want capacity", s, ok)
	}
	if st := h.BackendStats(); st.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1 (%+v)", st.Overflows, st)
	}
	h.Resolve(0)
	// Every claim must be gone: a new writer sees an empty directory.
	h.Begin(1)
	for i := 0; i < 3; i++ {
		h.Access(1, memmodel.Addr(uint64(i)<<memmodel.LineShift), true)
	}
	if _, ok := h.Pending(1); ok {
		t.Fatal("stale claims survived the capacity doom's release")
	}
}

// TestBoundedReadCapIndependent pins that the read and write caps are
// separate budgets and that re-touching a tracked line costs nothing.
func TestBoundedReadCapIndependent(t *testing.T) {
	h := New(boundedConfig(2, 8))
	h.Begin(0)
	h.Access(0, 0x0<<memmodel.LineShift, false)
	h.Access(0, 0x1<<memmodel.LineShift, false)
	for i := 0; i < 16; i++ { // re-touches: already tracked, no overflow
		h.Access(0, 0x1<<memmodel.LineShift, false)
	}
	if _, ok := h.Pending(0); ok {
		t.Fatal("re-touching a tracked line charged the cap")
	}
	h.Access(0, 0x2<<memmodel.LineShift, false)
	if s, ok := h.Pending(0); !ok || !s.Is(StatusCapacity) {
		t.Fatalf("read cap+1: Pending(0) = (%v, %v), want capacity", s, ok)
	}
}

// TestBoundedMatchesDirWithinCaps drives a bounded machine and a directory
// machine with identical randomized small-footprint traces: while no
// footprint exceeds either geometry, every observable must match.
func TestBoundedMatchesDirWithinCaps(t *testing.T) {
	base := Config{WriteSets: 4, WriteWays: 2, ReadSets: 8, ReadWays: 2, MaxConcurrent: 4}
	bcfg := base
	bcfg.Backend = "bounded"
	bcfg.BoundedReadCap, bcfg.BoundedWriteCap = 16, 8

	// Six lines: below the bounded caps and small enough that the dir
	// backend's set-associative caches never evict either.
	var pool []memmodel.Addr
	for i := 0; i < 6; i++ {
		pool = append(pool, memmodel.Addr(uint64(i)<<memmodel.LineShift))
	}
	const nthreads = 4
	for seed := uint64(1); seed <= 5; seed++ {
		rng := prng.New(seed * 2654435761)
		dir, bnd := New(base), New(bcfg)
		for op := 0; op < 4000; op++ {
			tid := int(rng.Intn(nthreads))
			ctx := fmt.Sprintf("seed %d op %d tid %d", seed, op, tid)
			switch rng.Intn(8) {
			case 0:
				ds, derr := dir.Begin(tid)
				bs, berr := bnd.Begin(tid)
				if ds != bs || (derr == nil) != (berr == nil) {
					t.Fatalf("%s: Begin dir=(%v,%v) bounded=(%v,%v)", ctx, ds, derr, bs, berr)
				}
			case 1:
				if _, ok := dir.Pending(tid); ok {
					if ds, bs := dir.Resolve(tid), bnd.Resolve(tid); ds != bs {
						t.Fatalf("%s: Resolve dir=%v bounded=%v", ctx, ds, bs)
					}
				} else if dir.InTxn(tid) {
					ds, dok := dir.Commit(tid)
					bs, bok := bnd.Commit(tid)
					if ds != bs || dok != bok {
						t.Fatalf("%s: Commit dir=(%v,%v) bounded=(%v,%v)", ctx, ds, dok, bs, bok)
					}
				}
			default:
				a := pool[rng.Intn(int64(len(pool)))]
				w := rng.Bool(0.5)
				dir.Access(tid, a, w)
				bnd.Access(tid, a, w)
			}
			for q := 0; q < nthreads; q++ {
				if di, bi := dir.InTxn(q), bnd.InTxn(q); di != bi {
					t.Fatalf("%s: InTxn(%d) dir=%v bounded=%v", ctx, q, di, bi)
				}
				ds, dok := dir.Pending(q)
				bs, bok := bnd.Pending(q)
				if ds != bs || dok != bok {
					t.Fatalf("%s: Pending(%d) dir=(%v,%v) bounded=(%v,%v)", ctx, q, ds, dok, bs, bok)
				}
				if dir.InTxn(q) {
					if dn, bn := dir.ReadSetSize(q), bnd.ReadSetSize(q); dn != bn {
						t.Fatalf("%s: ReadSetSize(%d) dir=%d bounded=%d", ctx, q, dn, bn)
					}
					if dn, bn := dir.WriteSetSize(q), bnd.WriteSetSize(q); dn != bn {
						t.Fatalf("%s: WriteSetSize(%d) dir=%d bounded=%d", ctx, q, dn, bn)
					}
				}
			}
			if dir.Stats() != bnd.Stats() {
				t.Fatalf("%s: Stats dir=%+v bounded=%+v", ctx, dir.Stats(), bnd.Stats())
			}
		}
	}
}

// TestBackendStatsZeroUnderRefScan pins that the reference scan mode keeps
// the directory counters untouched (the before/after benchmark contract).
func TestBackendStatsZeroUnderRefScan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefScan = true
	h := New(cfg)
	h.Begin(0)
	h.Access(0, 0x1000, true)
	h.Access(3, 0x1000, false)
	if st := h.BackendStats(); st != (BackendStats{}) {
		t.Fatalf("RefScan BackendStats = %+v, want zero", st)
	}
}
