package htm_test

import (
	"fmt"

	"repro/internal/htm"
)

// Two transactions collide on one cache line: requester wins, the holder is
// doomed and discovers the abort asynchronously. The status word says
// "conflict" — and nothing else, which is challenge 1 of §2.2.
func ExampleHTM() {
	h := htm.New(htm.DefaultConfig())
	h.Begin(0)
	h.Access(0, 0x1000, true) // thread 0 writes the line transactionally
	h.Begin(1)
	h.Access(1, 0x1008, true) // thread 1 writes another word of the same line

	if st, ok := h.Pending(0); ok {
		fmt.Println("thread 0 aborts with:", h.Resolve(0), "(retry bit:", st.Is(htm.StatusRetry), ")")
	}
	if st, ok := h.Commit(1); ok && st == 0 {
		fmt.Println("thread 1 commits")
	}
	// Output:
	// thread 0 aborts with: retry|conflict (retry bit: true )
	// thread 1 commits
}

// Strong isolation: a plain (non-transactional) store kills a transaction
// that has the line in its read set — the property the TxFail global-abort
// protocol is built on (§3, §4.1).
func ExampleHTM_strongIsolation() {
	h := htm.New(htm.DefaultConfig())
	h.Begin(0)
	h.Access(0, 0x40, false) // transactional read of the TxFail flag
	h.Access(1, 0x40, true)  // another thread's plain write to it
	_, pending := h.Pending(0)
	fmt.Println("transaction doomed:", pending)
	// Output:
	// transaction doomed: true
}
