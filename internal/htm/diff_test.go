package htm

import (
	"fmt"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/prng"
)

// The line-ownership directory (accessDir) must be observationally identical
// to the reference O(active-transactions) scan (accessRef, Config.RefScan).
// These tests drive a directory machine and a reference machine with the same
// randomized operation sequences and compare every observable after every
// step: pending statuses, delivered statuses, commit outcomes, footprint
// sizes, exposed conflict lines, diagnostics, and the stats counters.

// diffAddrs mixes word-level false sharing within a few lines, distinct lines
// spread across cache sets, page-crossing lines, and lines beyond the
// directory's flat bound (the far-map fallback in shadow.PageTable).
func diffAddrs() []memmodel.Addr {
	var out []memmodel.Addr
	for i := 0; i < 32; i++ { // 8 lines, word-granular offsets (false sharing)
		out = append(out, memmodel.Addr(0x1000+uint64(i)*8))
	}
	for i := 0; i < 24; i++ { // distinct lines across sets
		out = append(out, memmodel.Addr(uint64(i)<<memmodel.LineShift))
	}
	for i := 0; i < 8; i++ { // cross page-table pages
		out = append(out, memmodel.Addr(uint64(i+1)<<20))
	}
	for i := 0; i < 8; i++ { // line index beyond maxDir*PageSize: far map
		out = append(out, memmodel.Addr(1<<40+uint64(i)<<memmodel.LineShift))
	}
	return out
}

func diffConfigs() []Config {
	small := Config{
		WriteSets: 4, WriteWays: 2,
		ReadSets: 8, ReadWays: 2,
		MaxConcurrent: 4,
	}
	responder := small
	responder.ResponderWins = true
	exposed := small
	exposed.ExposeConflictAddress = true
	word := small
	word.GranularityShift = 3
	word.ExposeConflictAddress = true
	return []Config{small, responder, exposed, word, DefaultConfig()}
}

// compareObservables fails if the two machines disagree on anything a caller
// could see for any thread.
func compareObservables(t *testing.T, ctx string, dir, ref *HTM, nthreads int) {
	t.Helper()
	for tid := 0; tid < nthreads; tid++ {
		if di, ri := dir.InTxn(tid), ref.InTxn(tid); di != ri {
			t.Fatalf("%s: InTxn(%d) dir=%v ref=%v", ctx, tid, di, ri)
		}
		ds, dok := dir.Pending(tid)
		rs, rok := ref.Pending(tid)
		if ds != rs || dok != rok {
			t.Fatalf("%s: Pending(%d) dir=(%v,%v) ref=(%v,%v)", ctx, tid, ds, dok, rs, rok)
		}
		if dir.InTxn(tid) {
			if dn, rn := dir.ReadSetSize(tid), ref.ReadSetSize(tid); dn != rn {
				t.Fatalf("%s: ReadSetSize(%d) dir=%d ref=%d", ctx, tid, dn, rn)
			}
			if dn, rn := dir.WriteSetSize(tid), ref.WriteSetSize(tid); dn != rn {
				t.Fatalf("%s: WriteSetSize(%d) dir=%d ref=%d", ctx, tid, dn, rn)
			}
		}
		dl, dok2 := dir.ConflictLine(tid)
		rl, rok2 := ref.ConflictLine(tid)
		if dl != rl || dok2 != rok2 {
			t.Fatalf("%s: ConflictLine(%d) dir=(%v,%v) ref=(%v,%v)", ctx, tid, dl, dok2, rl, rok2)
		}
	}
	if dir.Diag() != ref.Diag() {
		t.Fatalf("%s: Diag dir=%+v ref=%+v", ctx, dir.Diag(), ref.Diag())
	}
	if dir.Stats() != ref.Stats() {
		t.Fatalf("%s: Stats dir=%+v ref=%+v", ctx, dir.Stats(), ref.Stats())
	}
}

func TestDirectoryMatchesReferenceScan(t *testing.T) {
	const nthreads = 6
	addrs := diffAddrs()
	for ci, cfg := range diffConfigs() {
		for seed := uint64(1); seed <= 5; seed++ {
			rng := prng.New(seed*1315423911 + uint64(ci))
			refCfg := cfg
			refCfg.RefScan = true
			dir, ref := New(cfg), New(refCfg)
			for op := 0; op < 4000; op++ {
				tid := int(rng.Intn(nthreads))
				ctx := fmt.Sprintf("cfg %d seed %d op %d tid %d", ci, seed, op, tid)
				switch rng.Intn(10) {
				case 0: // begin (nested begin aborts+delivers inline)
					ds, derr := dir.Begin(tid)
					rs, rerr := ref.Begin(tid)
					if ds != rs || (derr == nil) != (rerr == nil) {
						t.Fatalf("%s: Begin dir=(%v,%v) ref=(%v,%v)", ctx, ds, derr, rs, rerr)
					}
				case 1: // commit or deliver a pending abort
					if _, ok := dir.Pending(tid); ok {
						if ds, rs := dir.Resolve(tid), ref.Resolve(tid); ds != rs {
							t.Fatalf("%s: Resolve dir=%v ref=%v", ctx, ds, rs)
						}
					} else if dir.InTxn(tid) {
						ds, dok := dir.Commit(tid)
						rs, rok := ref.Commit(tid)
						if ds != rs || dok != rok {
							t.Fatalf("%s: Commit dir=(%v,%v) ref=(%v,%v)", ctx, ds, dok, rs, rok)
						}
					}
				case 2: // asynchronous machine aborts
					switch rng.Intn(3) {
					case 0:
						dir.InjectInterrupt(tid)
						ref.InjectInterrupt(tid)
					case 1:
						dir.InjectAbort(tid, StatusRetry)
						ref.InjectAbort(tid, StatusRetry)
					case 2:
						code := uint8(rng.Intn(200))
						dir.AbortExplicit(tid, code)
						ref.AbortExplicit(tid, code)
					}
				default: // memory access (the hot path under test)
					a := addrs[rng.Intn(int64(len(addrs)))]
					w := rng.Bool(0.5)
					dir.Access(tid, a, w)
					ref.Access(tid, a, w)
				}
				compareObservables(t, ctx, dir, ref, nthreads)
			}
		}
	}
}

// TestDirectoryInvariant cross-checks the directory against ground truth
// after a randomized run: every live transaction's resident lines are claimed
// under its slot on the right side, and conflictors() answers exactly what
// the reference scan would compute, for every address in the pool.
func TestDirectoryInvariant(t *testing.T) {
	cfg := Config{WriteSets: 4, WriteWays: 2, ReadSets: 8, ReadWays: 2, MaxConcurrent: 8}
	addrs := diffAddrs()
	rng := prng.New(99)
	h := New(cfg)
	const nthreads = 8
	for op := 0; op < 8000; op++ {
		tid := int(rng.Intn(nthreads))
		switch rng.Intn(12) {
		case 0:
			h.Begin(tid)
		case 1:
			if _, ok := h.Pending(tid); ok {
				h.Resolve(tid)
			} else if h.InTxn(tid) {
				h.Commit(tid)
			}
		default:
			h.Access(tid, addrs[rng.Intn(int64(len(addrs)))], rng.Bool(0.5))
		}
		if op%64 != 0 {
			continue
		}
		for _, a := range addrs {
			line := h.lineOf(a)
			var wantR, wantW uint64
			for tid, tx := range h.txns {
				if tx == nil || !tx.active || tx.doomed {
					continue
				}
				st := h.dirbe.states[tid]
				if st.reads.Contains(line) {
					wantR |= 1 << uint(tx.slot)
				}
				if st.writes.Contains(line) {
					wantW |= 1 << uint(tx.slot)
				}
			}
			var gotR, gotW uint64
			if e := h.dirbe.dir.pt.Peek(uint64(line)); e != nil {
				gotR, gotW = e.readers, e.writers
			}
			if gotR != wantR || gotW != wantW {
				t.Fatalf("op %d line %#x: directory (r=%b w=%b) != caches (r=%b w=%b)",
					op, uint64(line), gotR, gotW, wantR, wantW)
			}
		}
	}
}

// TestMaxConcurrentOver64Panics pins the directory's 64-context bound.
func TestMaxConcurrentOver64Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with MaxConcurrent=65 must panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 65
	New(cfg)
}
