package htm

import (
	"repro/internal/cache"
	"repro/internal/memmodel"
)

// dirBackend is the default conflict backend: the line-ownership directory
// of dir.go plus per-transaction set-associative tracking caches, extracted
// verbatim from the pre-seam machine. It also retains the pre-directory
// reference resolver (Config.RefScan): an O(active-transactions) scan
// probing every context's caches, kept for the package's differential tests
// and before/after benchmarks. The two are observationally identical.
type dirBackend struct {
	h       *HTM
	refScan bool

	dir      directory
	fastpath uint64

	// states holds per-thread tracking caches, indexed by tid in parallel
	// with HTM.txns; every active transaction has one (created at begin).
	states []*dirTxnState
}

// dirTxnState is one thread's footprint-tracking state. slot mirrors the
// transaction's hardware-context slot for the eviction callbacks, which can
// fire any time a line leaves a cache while the slot is still held.
type dirTxnState struct {
	slot   int
	reads  *cache.Cache
	writes *cache.Cache
}

func newDirBackend(h *HTM, refScan bool) *dirBackend {
	return &dirBackend{h: h, refScan: refScan}
}

func (b *dirBackend) name() string { return "dir" }

func (b *dirBackend) stateOf(tid int) *dirTxnState {
	for tid >= len(b.states) {
		b.states = append(b.states, nil)
	}
	if b.states[tid] == nil {
		cfg := &b.h.cfg
		st := &dirTxnState{
			slot:   -1,
			reads:  cache.New(cfg.ReadSets, cfg.ReadWays),
			writes: cache.New(cfg.WriteSets, cfg.WriteWays),
		}
		if !b.refScan {
			// Directory maintenance rides the tracking caches: a line
			// leaving a set (LRU eviction or the Reset at begin, commit and
			// abort) withdraws exactly that claim, so releasing a
			// transaction's footprint walks its own resident lines only.
			st.reads.SetOnEvict(func(l memmodel.Line) { b.dir.releaseRead(l, st.slot) })
			st.writes.SetOnEvict(func(l memmodel.Line) { b.dir.releaseWrite(l, st.slot) })
		}
		b.states[tid] = st
	}
	return b.states[tid]
}

func (b *dirBackend) begin(tid, slot int) {
	st := b.stateOf(tid)
	st.slot = slot
	st.reads.Reset()
	st.writes.Reset()
}

func (b *dirBackend) release(tid, slot int) {
	if tid >= len(b.states) || b.states[tid] == nil {
		return
	}
	st := b.states[tid]
	st.reads.Reset()
	st.writes.Reset()
}

func (b *dirBackend) readSetSize(tid int) int {
	if tid >= len(b.states) || b.states[tid] == nil {
		return 0
	}
	return b.states[tid].reads.Len()
}

func (b *dirBackend) writeSetSize(tid int) int {
	if tid >= len(b.states) || b.states[tid] == nil {
		return 0
	}
	return b.states[tid].writes.Len()
}

func (b *dirBackend) stats() BackendStats {
	return BackendStats{Lines: b.dir.lines, Checks: b.dir.checks, Fastpath: b.fastpath}
}

func (b *dirBackend) access(tid int, addr memmodel.Addr, isWrite bool) {
	if b.refScan {
		b.accessRef(tid, addr, isWrite)
		return
	}
	b.accessDir(tid, addr, isWrite)
}

// accessDir resolves the access against the line-ownership directory: one
// Peek yields the slot mask of every transaction holding a conflicting claim,
// so the cost is O(actual conflictors), not O(active transactions). When no
// live transaction exists the access returns before even computing the line.
func (b *dirBackend) accessDir(tid int, addr memmodel.Addr, isWrite bool) {
	h := b.h
	if h.liveMask == 0 {
		// Empty machine: no claim can conflict and the requester (not live,
		// or it would hold a liveMask bit) tracks nothing.
		b.fastpath++
		return
	}
	line := h.lineOf(addr)
	var t *txn
	if tid < len(h.txns) {
		t = h.txns[tid]
	}
	if t == nil || !t.active || t.doomed {
		// Non-transactional requester: one non-allocating lookup for the
		// conflict mask; nothing to track.
		if conf := b.dir.conflictors(line, isWrite); conf != 0 {
			h.resolveConflicts(tid, line, conf, false)
		}
		return
	}
	// Transactional requester: a single entry lookup serves both the
	// conflict test and — if the line stays resident — the ownership claim.
	slotBit := uint64(1) << uint(t.slot)
	b.dir.checks++
	ent := b.dir.pt.Get(uint64(line))
	conf := ent.writers
	if isWrite {
		conf |= ent.readers
	}
	// A transaction never conflicts with its own claims (re-reading or
	// upgrading a line it already holds).
	conf &^= slotBit
	if conf != 0 && h.resolveConflicts(tid, line, conf, true) {
		return
	}
	st := b.states[tid]
	set := st.reads
	if isWrite {
		set = st.writes
	}
	if _, evicted := set.Touch(line); evicted {
		// The victim's claim was already withdrawn by the eviction callback;
		// the incoming line was never claimed, and the capacity doom's
		// release resets the remainder.
		h.doom(tid, StatusCapacity)
		return
	}
	// Claim in place. Dooming the conflictors above already withdrew their
	// bits from ent via their cache Resets, so an empty word here really is
	// the line's first live claim.
	if ent.readers|ent.writers == 0 {
		b.dir.lines++
	}
	if isWrite {
		ent.writers |= slotBit
	} else {
		ent.readers |= slotBit
	}
}

// accessRef is the reference resolver: the pre-directory
// O(active-transactions) scan probing every context's set-associative
// read/write sets. Kept (behind Config.RefScan) for the package's
// differential tests and before/after benchmarks; it must stay
// observationally identical to accessDir.
func (b *dirBackend) accessRef(tid int, addr memmodel.Addr, isWrite bool) {
	h := b.h
	line := h.lineOf(addr)
	var t *txn
	if tid < len(h.txns) {
		t = h.txns[tid]
	}
	requesterTx := t != nil && t.active && !t.doomed
	var conf uint64
	for otid, o := range h.txns {
		if o == nil || otid == tid || !o.active || o.doomed {
			continue
		}
		st := b.states[otid]
		if st.writes.Contains(line) || (isWrite && st.reads.Contains(line)) {
			conf |= 1 << uint(o.slot)
		}
	}
	if conf != 0 && h.resolveConflicts(tid, line, conf, requesterTx) {
		return
	}
	if requesterTx {
		st := b.states[tid]
		set := st.reads
		if isWrite {
			set = st.writes
		}
		if _, evicted := set.Touch(line); evicted {
			h.doom(tid, StatusCapacity)
		}
	}
}
