package htm

import (
	"testing"

	"repro/internal/memmodel"
)

// BenchmarkTxnAccess is the fast path's inner loop: a transactional access
// with conflict scan over the other hardware contexts.
func BenchmarkTxnAccess(b *testing.B) {
	h := New(DefaultConfig())
	for tid := 0; tid < 4; tid++ {
		h.Begin(tid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := i & 3
		h.Access(tid, memmodel.Addr(uint64(tid)<<20|uint64(i&0xfff)<<6), i&1 == 0)
		if _, ok := h.Pending(tid); ok {
			h.Resolve(tid)
			h.Begin(tid)
		}
	}
}

func BenchmarkBeginCommit(b *testing.B) {
	h := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		h.Begin(0)
		h.Access(0, 0x1000, true)
		h.Commit(0)
	}
}
