package htm

import (
	"testing"

	"repro/internal/memmodel"
)

// BenchmarkTxnAccess is the fast path's inner loop: a transactional access
// with conflict scan over the other hardware contexts.
func BenchmarkTxnAccess(b *testing.B) {
	h := New(DefaultConfig())
	for tid := 0; tid < 4; tid++ {
		h.Begin(tid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := i & 3
		h.Access(tid, memmodel.Addr(uint64(tid)<<20|uint64(i&0xfff)<<6), i&1 == 0)
		if _, ok := h.Pending(tid); ok {
			h.Resolve(tid)
			h.Begin(tid)
		}
	}
}

// BenchmarkNonTxnAccessIdle is the empty-machine fast path: accesses with
// zero transactions active, which dominate every workload. The accompanying
// test pins that the path does no allocation.
func BenchmarkNonTxnAccessIdle(b *testing.B) {
	h := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i&7, memmodel.Addr(uint64(i)<<3), i&1 == 0)
	}
}

// TestAccessFastPathAllocFree pins the satellite guarantee: with no live
// transaction, Access returns before touching the directory, the line
// computation, or the allocator.
func TestAccessFastPathAllocFree(t *testing.T) {
	h := New(DefaultConfig())
	if n := testing.AllocsPerRun(1000, func() {
		h.Access(3, 0xdeadbeef, true)
	}); n != 0 {
		t.Fatalf("idle-machine Access allocates %.1f times per run, want 0", n)
	}
	if h.BackendStats().Fastpath == 0 {
		t.Fatal("idle-machine Access did not take the fast path")
	}
	if h.dirbe.dir.checks != 0 {
		t.Fatal("idle-machine Access consulted the directory")
	}
}

func BenchmarkBeginCommit(b *testing.B) {
	h := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		h.Begin(0)
		h.Access(0, 0x1000, true)
		h.Commit(0)
	}
}
