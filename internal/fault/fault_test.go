package fault

import (
	"testing"

	"repro/internal/htm"
	"repro/internal/memmodel"
)

// drive replays a fixed opportunity sequence against an injector and
// returns the decision trace: one entry per opportunity, kind.status()+1
// when it fired (so a fired Unknown is distinguishable from "no fault").
func drive(inj *Injector, n int) []int {
	out := make([]int, 0, 3*n)
	rec := func(st htm.Status, ok bool) {
		if !ok {
			out = append(out, 0)
		} else {
			out = append(out, int(st)+1)
		}
	}
	for i := 0; i < n; i++ {
		now := int64(i * 10)
		rec(inj.AtAccess(i%4, now, 5, true))
		rec(inj.AtCommit(i%4, now+3))
		if inj.AtSyscall(i%4, now+7) {
			out = append(out, -1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// TestInjectorDeterministic: two injectors compiled from equal plans make
// identical decisions over an identical opportunity sequence — the property
// the chaos differential suite rests on.
func TestInjectorDeterministic(t *testing.T) {
	plan := StandardPlan(42, 1)
	a := drive(New(plan), 2000)
	b := drive(New(plan), 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed must give a different trace (overwhelmingly likely
	// over 6000 decisions at these probabilities).
	plan2 := plan
	plan2.Seed = 43
	c := drive(New(plan2), 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical decision traces")
	}
}

// TestPlanScale pins clamping and that Scale does not mutate the receiver.
func TestPlanScale(t *testing.T) {
	p := Plan{Seed: 1, Rules: []Rule{{Kind: Unknown, Prob: 0.4, Burst: 3}}}
	s := p.Scale(10)
	if s.Rules[0].Prob != 1 {
		t.Errorf("Prob scaled x10 = %v, want clamped 1", s.Rules[0].Prob)
	}
	if s.Rules[0].Burst != 3 {
		t.Errorf("Scale changed Burst to %d", s.Rules[0].Burst)
	}
	if n := p.Scale(-1).Rules[0].Prob; n != 0 {
		t.Errorf("negative scale Prob = %v, want 0", n)
	}
	if p.Rules[0].Prob != 0.4 {
		t.Errorf("Scale mutated the receiver: Prob = %v", p.Rules[0].Prob)
	}
}

// TestStandardPlanIntensityZero: at or below zero intensity the standard
// plan is empty and NewIfAny compiles it to the nil (disabled) injector.
func TestStandardPlanIntensityZero(t *testing.T) {
	for _, in := range []float64{0, -1} {
		p := StandardPlan(7, in)
		if !p.Empty() {
			t.Errorf("StandardPlan(7, %v) not empty", in)
		}
		if NewIfAny(p) != nil {
			t.Errorf("NewIfAny(StandardPlan(7, %v)) != nil", in)
		}
	}
	if NewIfAny(StandardPlan(7, 0.5)) == nil {
		t.Error("NewIfAny(StandardPlan(7, 0.5)) = nil, want an injector")
	}
}

// TestNilInjectorDisabled: every hook on the nil injector declines.
func TestNilInjectorDisabled(t *testing.T) {
	var inj *Injector
	if _, ok := inj.AtAccess(0, 0, 0, true); ok {
		t.Error("nil AtAccess fired")
	}
	if _, ok := inj.AtCommit(0, 0); ok {
		t.Error("nil AtCommit fired")
	}
	if inj.AtSyscall(0, 0) {
		t.Error("nil AtSyscall fired")
	}
	if inj.Stats().Total() != 0 {
		t.Error("nil Stats non-zero")
	}
}

// TestBurstSemantics: a Prob-1 hit arms the burst counter, and the next
// Burst matching opportunities fire unconditionally even at Prob 0 — here
// isolated by windowing the Bernoulli rule to a single instant.
func TestBurstSemantics(t *testing.T) {
	inj := New(Plan{Seed: 3, Rules: []Rule{
		{Kind: RetryStorm, Prob: 1, Burst: 2, Window: Window{From: 0, To: 1}},
	}})
	fired := 0
	for now := int64(0); now < 10; now++ {
		if _, ok := inj.AtAccess(0, now, 1, true); ok {
			fired++
		}
	}
	// Window [0,1) permits exactly one Bernoulli hit, and burst
	// opportunities must still satisfy the rule's window/targeting — so the
	// armed burst cannot fire outside the window.
	if fired != 1 {
		t.Fatalf("windowed burst fired %d times, want 1 (burst does not outlive the window)", fired)
	}

	// Unwindowed: one hit arms the counter and the next Burst opportunities
	// fire unconditionally.
	inj = New(Plan{Seed: 3, Rules: []Rule{{Kind: RetryStorm, Prob: 1, Burst: 4}}})
	st, ok := inj.AtAccess(0, 0, 1, true)
	if !ok || st != htm.StatusRetry {
		t.Fatalf("first access: (%v, %v), want retry fire", st, ok)
	}
	if got := inj.Stats().Of(RetryStorm); got != 1 {
		t.Fatalf("stats after 1 fire: %d", got)
	}
	for i := 0; i < 4; i++ {
		if _, ok := inj.AtAccess(0, int64(i+1), 1, true); !ok {
			t.Fatalf("burst opportunity %d did not fire", i)
		}
	}
	if got := inj.Stats().Of(RetryStorm); got != 5 {
		t.Fatalf("stats after hit+burst: %d, want 5", got)
	}
}

// TestThreadTargeting: a Threads-restricted rule never fires for other
// threads.
func TestThreadTargeting(t *testing.T) {
	inj := New(Plan{Seed: 9, Rules: []Rule{{Kind: Unknown, Prob: 1, Threads: []int{2}}}})
	if _, ok := inj.AtAccess(1, 0, 0, true); ok {
		t.Error("rule targeting t2 fired for t1")
	}
	if _, ok := inj.AtAccess(2, 0, 0, true); !ok {
		t.Error("rule targeting t2 did not fire for t2")
	}
}

// TestWindowPhases: a windowed rule fires only inside [From, To), and
// To == 0 means open-ended.
func TestWindowPhases(t *testing.T) {
	inj := New(Plan{Seed: 11, Rules: []Rule{{Kind: Unknown, Prob: 1, Window: Window{From: 100, To: 200}}}})
	for _, tc := range []struct {
		now  int64
		want bool
	}{{0, false}, {99, false}, {100, true}, {199, true}, {200, false}} {
		if _, ok := inj.AtAccess(0, tc.now, 0, true); ok != tc.want {
			t.Errorf("now=%d fired=%v, want %v", tc.now, ok, tc.want)
		}
	}
	open := New(Plan{Seed: 11, Rules: []Rule{{Kind: Unknown, Prob: 1, Window: Window{From: 50}}}})
	if _, ok := open.AtAccess(0, 1<<40, 0, true); !ok {
		t.Error("open-ended window closed")
	}
}

// TestDoomedLineRegion: DoomedLine fires only on accesses inside
// [Line, Line+Lines), with Lines == 0 meaning a single line, and only at
// access opportunities (never commit).
func TestDoomedLineRegion(t *testing.T) {
	inj := New(Plan{Seed: 13, Rules: []Rule{{Kind: DoomedLine, Prob: 1, Line: 10, Lines: 3}}})
	for _, tc := range []struct {
		line int
		want bool
	}{{9, false}, {10, true}, {12, true}, {13, false}} {
		st, ok := inj.AtAccess(0, 0, memmodel.Line(tc.line), true)
		if ok != tc.want {
			t.Errorf("line %d fired=%v, want %v", tc.line, ok, tc.want)
		}
		if ok && st != htm.StatusConflict|htm.StatusRetry {
			t.Errorf("line %d status %v, want conflict|retry", tc.line, st)
		}
	}
	single := New(Plan{Seed: 13, Rules: []Rule{{Kind: DoomedLine, Prob: 1, Line: 10}}})
	if _, ok := single.AtAccess(0, 0, 11, true); ok {
		t.Error("Lines=0 rule fired one line past Line")
	}
	if _, ok := single.AtAccess(0, 0, 10, true); !ok {
		t.Error("Lines=0 rule did not fire on its line")
	}
	if _, ok := inj.AtCommit(0, 0); ok {
		t.Error("DoomedLine fired at commit")
	}
}

// TestOpportunityEligibility: each hook only consults kinds that fire at
// that opportunity.
func TestOpportunityEligibility(t *testing.T) {
	all := New(Plan{Seed: 17, Rules: []Rule{
		{Kind: CommitAbort, Prob: 1},
		{Kind: SyscallCluster, Prob: 1},
	}})
	if _, ok := all.AtAccess(0, 0, 0, true); ok {
		t.Error("commit/syscall kinds fired at an access")
	}
	if st, ok := all.AtCommit(0, 0); !ok || st != 0 {
		t.Errorf("AtCommit = (%v, %v), want unknown-status fire", st, ok)
	}
	if !all.AtSyscall(0, 0) {
		t.Error("SyscallCluster did not fire at a syscall")
	}
}

// TestStatsString covers the human rendering used by cmd/txrace.
func TestStatsString(t *testing.T) {
	if s := (Stats{}).String(); s != "none" {
		t.Errorf("zero Stats = %q, want none", s)
	}
	var st Stats
	st.Injected[Unknown] = 2
	st.Injected[CommitAbort] = 1
	if s := st.String(); s != "unknown=2 commit-abort=1" {
		t.Errorf("Stats = %q", s)
	}
	if st.Total() != 3 {
		t.Errorf("Total = %d", st.Total())
	}
}
