// Package fault is a deterministic, seeded fault-plan engine for the HTM
// fast path. A declarative Plan describes hostile transactional behaviour —
// spurious unknown aborts, retry-only storms, capacity-pressure bursts,
// persistent-abort "doomed line" regions, aborts delivered exactly at
// commit, and abort clustering at syscall boundaries — and an Injector
// compiled from the plan answers the machine's fault-injection hook points
// (htm.Injector) plus the runtime's syscall hook.
//
// Everything is a pure function of the plan: decisions draw from one
// internal/prng splitmix64 stream seeded by Plan.Seed, opportunities arrive
// in the simulator's deterministic order, and therefore an injected run is
// exactly as reproducible as a fault-free one. That is what lets the chaos
// differential suite compare the race set of a faulted run against a
// fault-free reference byte for byte.
//
// TxRace's abort decision tree (§4.2 of the paper) only ever sees the
// status words the injector fabricates — never the fact of injection — so
// the runtime is stressed through exactly the interface real hardware
// would present.
package fault

import (
	"fmt"

	"repro/internal/htm"
	"repro/internal/memmodel"
	"repro/internal/prng"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// Unknown dooms a transaction at a transactional access with the
	// all-zero status word Haswell reports for interrupts and other
	// unexplained aborts (§2.2 challenge 4).
	Unknown Kind = iota
	// RetryStorm dooms a transaction with the pure retry bit, exercising
	// the §4.2 retry policy; with Burst > 0 consecutive retries keep
	// failing, which is what exhausts a retry budget.
	RetryStorm
	// CapacityBurst dooms a transaction with a capacity status regardless
	// of its actual footprint, modelling pathological set-associativity
	// pressure (the "On the Cost of Concurrency in TM" abort regimes).
	CapacityBurst
	// DoomedLine dooms any transaction touching a configured line region
	// with a conflict|retry status — a persistent-abort region that looks
	// like unresolvable false sharing to the runtime.
	DoomedLine
	// CommitAbort dooms a transaction at its commit point (xend) with an
	// unknown status: all work done, abort delivered at the last moment.
	CommitAbort
	// SyscallCluster fires at a syscall boundary and dooms every open
	// transaction machine-wide with an unknown status, modelling an
	// interrupt storm clustered around privilege-level changes.
	SyscallCluster

	kindCount
)

func (k Kind) String() string {
	switch k {
	case Unknown:
		return "unknown"
	case RetryStorm:
		return "retry-storm"
	case CapacityBurst:
		return "capacity-burst"
	case DoomedLine:
		return "doomed-line"
	case CommitAbort:
		return "commit-abort"
	case SyscallCluster:
		return "syscall-cluster"
	default:
		return "?"
	}
}

// status maps a fault kind to the RTM status word it fabricates.
func (k Kind) status() htm.Status {
	switch k {
	case RetryStorm:
		return htm.StatusRetry
	case CapacityBurst:
		return htm.StatusCapacity
	case DoomedLine:
		return htm.StatusConflict | htm.StatusRetry
	default:
		// Unknown, CommitAbort, SyscallCluster: the unexplained zero word.
		return 0
	}
}

// Window is a phase window in simulated cycles. The zero Window is always
// active; To == 0 means open-ended.
type Window struct {
	From, To int64
}

func (w Window) contains(now int64) bool {
	if now < w.From {
		return false
	}
	return w.To == 0 || now < w.To
}

// Rule is one fault source in a Plan.
type Rule struct {
	// Kind selects the fault and the opportunity it fires at (transactional
	// access, commit, or syscall boundary).
	Kind Kind
	// Window restricts the rule to a phase of the run; the zero value is
	// always active.
	Window Window
	// Threads targets specific thread ids; nil targets all threads.
	Threads []int
	// Prob is the Bernoulli probability of firing per opportunity.
	Prob float64
	// Burst, when positive, extends each hit into a storm: the next Burst
	// matching opportunities fire unconditionally.
	Burst int
	// Line and Lines define the doomed region for DoomedLine rules:
	// [Line, Line+Lines). Lines == 0 means a single line.
	Line  memmodel.Line
	Lines int
}

func (r *Rule) targets(tid int) bool {
	if len(r.Threads) == 0 {
		return true
	}
	for _, t := range r.Threads {
		if t == tid {
			return true
		}
	}
	return false
}

func (r *Rule) inRegion(line memmodel.Line) bool {
	n := r.Lines
	if n <= 0 {
		n = 1
	}
	return line >= r.Line && line < r.Line+memmodel.Line(n)
}

// Plan is a declarative fault schedule. The zero Plan injects nothing.
type Plan struct {
	// Seed feeds the injector's private splitmix64 stream; two injectors
	// built from equal plans make identical decisions.
	Seed  uint64
	Rules []Rule
}

// Empty reports whether the plan can never fire.
func (p Plan) Empty() bool {
	for _, r := range p.Rules {
		if r.Prob > 0 {
			return false
		}
	}
	return true
}

// Scale returns a copy of the plan with every rule's probability multiplied
// by f and clamped to [0, 1]. Burst lengths and targeting are unchanged, so
// a sweep over Scale values varies intensity without reshaping the mix.
func (p Plan) Scale(f float64) Plan {
	out := Plan{Seed: p.Seed, Rules: make([]Rule, len(p.Rules))}
	copy(out.Rules, p.Rules)
	for i := range out.Rules {
		pr := out.Rules[i].Prob * f
		if pr < 0 {
			pr = 0
		}
		if pr > 1 {
			pr = 1
		}
		out.Rules[i].Prob = pr
	}
	return out
}

// StandardPlan is the chaos suite's standard fault mix at the given
// intensity (0 disables everything, 1 is hostile): every kind except
// DoomedLine participates, with per-opportunity probabilities scaled so the
// frequent opportunities (transactional accesses) fire far more rarely than
// the per-transaction ones (commit) and per-thread ones (syscalls).
// DoomedLine needs a workload-specific line region, so callers that want it
// append their own rule.
func StandardPlan(seed uint64, intensity float64) Plan {
	if intensity <= 0 {
		return Plan{}
	}
	base := Plan{Seed: seed, Rules: []Rule{
		{Kind: Unknown, Prob: 0.002},
		{Kind: RetryStorm, Prob: 0.001, Burst: 4},
		{Kind: CapacityBurst, Prob: 0.0005, Burst: 2},
		{Kind: CommitAbort, Prob: 0.05},
		{Kind: SyscallCluster, Prob: 0.2},
	}}
	return base.Scale(intensity)
}

// Stats counts injected faults by kind.
type Stats struct {
	Injected [kindCount]uint64
}

// Of returns the injected count for one kind.
func (s Stats) Of(k Kind) uint64 { return s.Injected[k] }

// Total returns the number of injected faults across all kinds.
func (s Stats) Total() uint64 {
	var t uint64
	for _, n := range s.Injected {
		t += n
	}
	return t
}

func (s Stats) String() string {
	out := ""
	for k := Kind(0); k < kindCount; k++ {
		if s.Injected[k] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, s.Injected[k])
	}
	if out == "" {
		return "none"
	}
	return out
}

// rule is a compiled Rule plus its live burst counter.
type rule struct {
	Rule
	burstLeft int
}

// Injector answers the machine's and runtime's fault hook points for one
// run. It is not safe for concurrent use; each simulated run owns one
// (parallel experiment jobs each build their own from the same Plan).
type Injector struct {
	rules []rule
	rng   prng.PRNG
	stats Stats
	// marked holds, per thread, a sticky flag set when an injected fault
	// doomed that thread's transaction (AtAccess/AtCommit) and cleared by
	// ConsumeMark. It exists solely for the attribution ledger: the runtime's
	// abort policy never reads it (it still sees only fabricated status
	// words), but the profiler may label the abort "fault-injected" instead
	// of misattributing it to a genuine cause.
	marked []bool
}

// New compiles a plan. A nil *Injector is the disabled state — every
// At* method on nil reports no fault — so callers can pass the result of
// NewIfAny straight through.
func New(plan Plan) *Injector {
	inj := &Injector{rng: prng.New(plan.Seed ^ 0xfa017ab1e), rules: make([]rule, len(plan.Rules))}
	for i, r := range plan.Rules {
		inj.rules[i] = rule{Rule: r}
	}
	return inj
}

// NewIfAny compiles a plan, returning nil (the disabled injector) when the
// plan can never fire — so a zero-intensity sweep point runs with no
// injector attached at all, not just one that declines.
func NewIfAny(plan Plan) *Injector {
	if plan.Empty() {
		return nil
	}
	return New(plan)
}

// Stats returns the per-kind injected counts so far.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return i.stats
}

// fire scans the rules for the first one of an eligible kind that triggers
// at this opportunity. Burst counters are consumed before fresh Bernoulli
// draws, so a storm in progress keeps firing deterministically.
func (i *Injector) fire(tid int, now int64, line memmodel.Line, haveLine bool, eligible func(Kind) bool) (Kind, bool) {
	for idx := range i.rules {
		r := &i.rules[idx]
		if !eligible(r.Kind) || !r.targets(tid) || !r.Window.contains(now) {
			continue
		}
		if r.Kind == DoomedLine && (!haveLine || !r.inRegion(line)) {
			continue
		}
		if r.burstLeft > 0 {
			r.burstLeft--
			i.stats.Injected[r.Kind]++
			return r.Kind, true
		}
		if r.Prob > 0 && i.rng.Bool(r.Prob) {
			r.burstLeft = r.Burst
			i.stats.Injected[r.Kind]++
			return r.Kind, true
		}
	}
	return 0, false
}

// AtAccess implements htm.Injector: consulted once per transactional access
// by an undoomed transaction. Returning ok dooms the transaction with the
// fabricated status before the access takes effect.
func (i *Injector) AtAccess(tid int, now int64, line memmodel.Line, write bool) (htm.Status, bool) {
	if i == nil {
		return 0, false
	}
	k, ok := i.fire(tid, now, line, true, func(k Kind) bool {
		return k == Unknown || k == RetryStorm || k == CapacityBurst || k == DoomedLine
	})
	if !ok {
		return 0, false
	}
	i.mark(tid)
	return k.status(), true
}

// AtCommit implements htm.Injector: consulted when an undoomed transaction
// reaches its commit point. Returning ok dooms it there, so Commit delivers
// the abort instead of committing.
func (i *Injector) AtCommit(tid int, now int64) (htm.Status, bool) {
	if i == nil {
		return 0, false
	}
	k, ok := i.fire(tid, now, 0, false, func(k Kind) bool { return k == CommitAbort })
	if !ok {
		return 0, false
	}
	i.mark(tid)
	return k.status(), true
}

func (i *Injector) mark(tid int) {
	if tid < 0 {
		return
	}
	for len(i.marked) <= tid {
		i.marked = append(i.marked, false)
	}
	i.marked[tid] = true
}

// ConsumeMark reports whether the last doom delivered to tid was injected,
// clearing the flag. The attribution profiler calls it once per handled
// abort; a nil injector never marks. This is observability metadata only —
// nothing on the abort-policy path consults it.
func (i *Injector) ConsumeMark(tid int) bool {
	if i == nil || tid < 0 || tid >= len(i.marked) {
		return false
	}
	m := i.marked[tid]
	i.marked[tid] = false
	return m
}

// AtSyscall is the runtime-layer hook: consulted once per executed syscall.
// Returning true asks the runtime to doom every open transaction
// machine-wide (abort clustering at the privilege boundary).
func (i *Injector) AtSyscall(tid int, now int64) bool {
	if i == nil {
		return false
	}
	_, ok := i.fire(tid, now, 0, false, func(k Kind) bool { return k == SyscallCluster })
	return ok
}
