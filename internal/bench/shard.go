package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/shadow"
	"repro/internal/trace"
)

// shardTraceEvents sizes the synthetic trace the shard rows replay: large
// enough that per-shard detection dominates the sequential routing pre-pass,
// small enough that best-of-3 stays inside the bench-smoke budget.
const shardTraceEvents = 120_000

var (
	shardTraceOnce sync.Once
	shardTrace     *trace.Trace
)

// buildShardTrace deterministically generates a detection-heavy trace: eight
// threads sweeping a multi-page working set with periodic lock handoffs, the
// same access mix as detect/sweep but in recorded form, so the shard rows
// measure exactly what ReplaySharded does to a real trace.
func buildShardTrace() *trace.Trace {
	tr := &trace.Trace{Name: "bench-shard"}
	const threads = 8
	for c := 1; c < threads; c++ {
		tr.Append(trace.Event{Kind: trace.KFork, TID: 0, Other: int32(c)})
	}
	rng := uint64(42)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for i := 0; i < shardTraceEvents; i++ {
		tid := int32(i % threads)
		if i%2048 == 0 {
			s := detect.SyncID(1 + next(4))
			tr.Append(trace.Event{Kind: trace.KRelease, TID: tid, Sync: s})
			tr.Append(trace.Event{Kind: trace.KAcquire, TID: (tid + 1) % threads, Sync: s})
			continue
		}
		// Spread across ~64 shadow pages so every shard count gets work.
		page := next(64)
		off := next(512)
		tr.Append(trace.Event{
			Kind: trace.KAccess, TID: tid, Write: i%4 == 0,
			Addr: memmodel.Addr(uint64(page)<<(shadow.PageShift+3) | uint64(off)<<3),
			Site: shadow.SiteID(1 + i%32),
		})
	}
	return tr
}

// benchShardedReplay measures one full sharded replay of the synthetic
// trace per op; events/sec for the trajectory file is derived from it.
func benchShardedReplay(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		shardTraceOnce.Do(func() { shardTrace = buildShardTrace() })
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := server.ReplaySharded(shardTrace, shards, shards); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// WireRow reports one wire version's serialized size on the synthetic
// shard trace — the bytes/event trajectory of the v2 varint+delta format.
type WireRow struct {
	Version       int    `json:"version"`
	Events        int    `json:"events"`
	Bytes         int    `json:"bytes"`
	BytesPerEvent string `json:"bytes_per_event"`
}

// WireRows measures both wire encodings of the shard trace.
func WireRows() ([]WireRow, error) {
	shardTraceOnce.Do(func() { shardTrace = buildShardTrace() })
	var out []WireRow
	for _, v := range []struct {
		version int
		write   func(io.Writer) (int64, error)
	}{
		{1, func(w io.Writer) (int64, error) { return shardTrace.WriteToV1(w) }},
		{2, func(w io.Writer) (int64, error) { return shardTrace.WriteTo(w) }},
	} {
		n, err := v.write(io.Discard)
		if err != nil {
			return nil, err
		}
		out = append(out, WireRow{
			Version: v.version, Events: shardTrace.Len(), Bytes: int(n),
			BytesPerEvent: report.FormatFixed(float64(n)/float64(shardTrace.Len()), 2),
		})
	}
	return out, nil
}

// ShardRow is one shard count's end-to-end sharded-replay throughput.
type ShardRow struct {
	Shards       int    `json:"shards"`
	Events       int    `json:"events"`
	Races        int    `json:"races"`
	WallMs       string `json:"wall_ms"`
	EventsPerSec string `json:"events_per_sec"`
}

// ShardScaling measures end-to-end sharded replay throughput (best of 3)
// for each shard count and cross-checks that every count finds the same
// races. Worker count follows shard count, as txserved runs it.
func ShardScaling(counts []int) ([]ShardRow, error) {
	shardTraceOnce.Do(func() { shardTrace = buildShardTrace() })
	var out []ShardRow
	races := -1
	for _, n := range counts {
		var best time.Duration
		var rep *server.Report
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			r, err := server.ReplaySharded(shardTrace, n, n)
			if err != nil {
				return nil, err
			}
			if d := time.Since(start); trial == 0 || d < best {
				best, rep = d, r
			}
		}
		if races < 0 {
			races = rep.RaceCount()
		} else if rep.RaceCount() != races {
			return nil, fmt.Errorf("bench: %d shards found %d races, expected %d", n, rep.RaceCount(), races)
		}
		secs := best.Seconds()
		out = append(out, ShardRow{
			Shards: n, Events: shardTrace.Len(), Races: rep.RaceCount(),
			WallMs:       report.FormatFixed(secs*1000, 2),
			EventsPerSec: report.FormatFixed(float64(shardTrace.Len())/secs, 0),
		})
	}
	return out, nil
}

// gateShards is the core-count-aware acceptance check for the sharded
// detector: on a machine with real parallelism the 8-shard replay must beat
// the 1-shard replay by the advertised margin; on starved runners (the
// 1-CPU containers some CI legs use) only a sanity bound on sharding
// overhead is checkable.
func gateShards(rs []Result) error {
	s1, ok1 := Find(rs, "detect/shard/1")
	s8, ok2 := Find(rs, "detect/shard/8")
	if !ok1 || !ok2 {
		return fmt.Errorf("bench: suite missing detect/shard results")
	}
	switch cores := runtime.NumCPU(); {
	case cores >= 8:
		// The headline claim: >= 2x events/sec at 8 shards on 8 cores.
		if s8.Ns() > s1.Ns()*0.5 {
			return fmt.Errorf("bench: 8-shard replay %.0f ns/op, less than 2x faster than 1-shard's %.0f ns/op on %d cores",
				s8.Ns(), s1.Ns(), cores)
		}
	case cores >= 4:
		if s8.Ns() > s1.Ns()*0.8 {
			return fmt.Errorf("bench: 8-shard replay %.0f ns/op, not ahead of 1-shard's %.0f ns/op on %d cores",
				s8.Ns(), s1.Ns(), cores)
		}
	default:
		// No parallelism available: routing + merge overhead must still be
		// bounded relative to the sequential replay.
		if s8.Ns() > s1.Ns()*1.5 {
			return fmt.Errorf("bench: 8-shard replay %.0f ns/op, over 1.5x the 1-shard's %.0f ns/op even allowing zero parallel win (%d cores)",
				s8.Ns(), s1.Ns(), cores)
		}
	}
	return nil
}
