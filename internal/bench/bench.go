// Package bench is the benchmark trajectory harness: a fixed suite of micro
// benchmarks over the detector hot path, run via testing.Benchmark from any
// binary (no test runner needed), plus the JSON emitter behind txbench's
// -bench-out flag.
//
// The suite measures the paged shadow structures (internal/shadow) against
// the original map-backed layouts (shadow.MapMemory, shadow.MapCellStore),
// which are kept in-tree precisely so one binary can report before/after
// numbers for the same workload. Gate turns the comparison into a pass/fail
// check for CI: the paged path must allocate at most half as much per access
// as the map path, and the steady-state detector sweep must stay near
// allocation-free.
package bench

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/clock"
	"repro/internal/detect"
	"repro/internal/memmodel"
	"repro/internal/report"
	"repro/internal/shadow"
)

// Result is one micro benchmark measurement. The per-op fields are rendered
// with report.FormatFixed so emitted JSON has stable field widths and
// diffs cleanly across runs that differ only in float noise.
type Result struct {
	Name        string `json:"name"`
	N           int    `json:"n"`
	NsPerOp     string `json:"ns_per_op"`
	AllocsPerOp string `json:"allocs_per_op"`
	BytesPerOp  string `json:"bytes_per_op"`

	nsPerOp     float64
	allocsPerOp float64
}

// Ns returns the ns/op measurement. Results decoded from a trajectory file
// (e.g. a committed BENCH_<n>.json used as a gate baseline) carry only the
// formatted field, so Ns falls back to parsing it.
func (r Result) Ns() float64 {
	if r.nsPerOp == 0 && r.NsPerOp != "" {
		if v, err := strconv.ParseFloat(r.NsPerOp, 64); err == nil {
			return v
		}
	}
	return r.nsPerOp
}

// Allocs returns the raw allocations/op measurement.
func (r Result) Allocs() float64 { return r.allocsPerOp }

func makeResult(name string, br testing.BenchmarkResult) Result {
	ns := float64(br.T.Nanoseconds()) / float64(br.N)
	allocs := float64(br.MemAllocs) / float64(br.N)
	bytes := float64(br.MemBytes) / float64(br.N)
	return Result{
		Name:        name,
		N:           br.N,
		NsPerOp:     report.FormatFixed(ns, 2),
		AllocsPerOp: report.FormatFixed(allocs, 4),
		BytesPerOp:  report.FormatFixed(bytes, 2),
		nsPerOp:     ns,
		allocsPerOp: allocs,
	}
}

// workingSet is the number of distinct granules each benchmark sweeps: large
// enough to spill several pages, small enough to finish a reset cycle within
// one benchmark iteration batch.
const workingSet = 1 << 15

func addr(i int) memmodel.Addr {
	return memmodel.Addr(0x10000 + uint64(i%workingSet)*memmodel.WordSize)
}

// wordStore is the surface shared by Memory and MapMemory that the word
// benchmarks exercise.
type wordStore interface {
	Word(memmodel.Addr) *shadow.Word
	Reset()
}

// benchTouch measures first-touch cost: every reset cycle re-populates the
// whole working set, so per-op allocations reflect how much the layout
// allocates per fresh granule (map: one Word box each; paged: one page per
// PageSize granules).
func benchTouch(m wordStore) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := clock.MakeEpoch(0, 1)
		for i := 0; i < b.N; i++ {
			if i%workingSet == 0 {
				m.Reset()
			}
			w := m.Word(addr(i))
			w.W = e
		}
	}
}

// benchRevisit measures steady-state lookup cost over a resident working set:
// no allocation is acceptable on this path for either layout.
func benchRevisit(m wordStore) func(b *testing.B) {
	return func(b *testing.B) {
		e := clock.MakeEpoch(0, 1)
		for i := 0; i < workingSet; i++ {
			m.Word(addr(i)).W = e
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := m.Word(addr(i))
			w.W = e
		}
	}
}

// cellStore is the surface shared by CellStore and MapCellStore.
type cellStore interface {
	Add(memmodel.Addr, shadow.Cell) bool
	Cells(memmodel.Addr) []shadow.Cell
}

// benchCells measures the bounded-shadow record/evict cycle: four cells per
// granule, eight distinct (tid, write) record shapes, so steady state evicts.
func benchCells(s cellStore) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tid := clock.TID(i % 8)
			c := shadow.Cell{E: clock.MakeEpoch(tid, clock.Time(i/8+1)), Site: shadow.SiteID(i % 16), Write: i%2 == 0}
			s.Add(addr(i), c)
			_ = s.Cells(addr(i))
		}
	}
}

// benchDetector measures the full FastTrack hot path: two threads sweeping a
// shared working set with periodic lock handoffs, the access mix the
// experiments' slow path executes. Steady state must be allocation-free.
func benchDetector() func(b *testing.B) {
	return func(b *testing.B) {
		d := detect.New()
		d.Fork(0, 1)
		const lock = detect.SyncID(1)
		// Warm both thread clocks and the working set before timing.
		for i := 0; i < workingSet; i++ {
			d.Access(0, addr(i), true, 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tid := clock.TID(i % 2)
			if i%1024 == 0 {
				d.Release(tid, lock)
				d.Acquire(1-tid, lock)
			}
			d.Access(tid, addr(i), i%4 == 0, shadow.SiteID(2+i%8))
		}
	}
}

// microBench names one suite entry. Constructors run per invocation so every
// measurement starts from an empty store.
type microBench struct {
	name string
	fn   func(*testing.B)
}

func microFuncs() []microBench {
	out := []microBench{
		{"shadow/touch/map", benchTouch(shadow.NewMapMemory())},
		{"shadow/touch/paged", benchTouch(shadow.NewMemory())},
		{"shadow/revisit/map", benchRevisit(shadow.NewMapMemory())},
		{"shadow/revisit/paged", benchRevisit(shadow.NewMemory())},
		{"cells/add/map", benchCells(shadow.NewMapCellStore(4, 42))},
		{"cells/add/paged", benchCells(shadow.NewCellStore(4, 42))},
		{"detect/sweep", benchDetector()},
		{"htm/access/scan", benchHTMAccess(true)},
		{"htm/access/dir", benchHTMAccess(false)},
		{"htm/access/tag", benchHTMBackendAccess("tag", 0xff)},
		{"htm/access/bounded", benchHTMBackendAccess("bounded", 0xf)},
		{"htm/access/idle", benchHTMIdle()},
		{"sim/dispatch/tree", benchSimDispatch(true)},
		{"sim/dispatch/decoded", benchSimDispatch(false)},
		{"detect/shard/1", benchShardedReplay(1)},
		{"detect/shard/4", benchShardedReplay(4)},
		{"detect/shard/8", benchShardedReplay(8)},
	}
	return append(out, joinBenches()...)
}

// RunMicro executes the fixed micro suite and returns its results in suite
// order. Names pair map/paged variants of the same workload; the map variants
// are the pre-refactor layouts kept as reference implementations. Each row is
// measured three times and the fastest run kept: per-op minima damp scheduler
// and neighbour noise, which on shared runners routinely exceeds the margins
// the gate checks.
func RunMicro() []Result {
	var out []Result
	for _, mb := range microFuncs() {
		best := makeResult(mb.name, testing.Benchmark(mb.fn))
		for rep := 1; rep < 3; rep++ {
			if r := makeResult(mb.name, testing.Benchmark(mb.fn)); r.nsPerOp < best.nsPerOp {
				best = r
			}
		}
		out = append(out, best)
	}
	return out
}

// Find returns the named result, or false when the suite does not have it.
func Find(rs []Result, name string) (Result, bool) {
	for _, r := range rs {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Gate checks a micro-suite run against the regression policy: the paged
// first-touch path must allocate at most half of what the map path does per
// access, the steady-state paths must be effectively allocation-free, the
// HTM conflict directory must keep a wide lead over the reference scan, and
// decoded dispatch must not lose to the tree walk. Thresholds are
// deliberately generous — the gate exists to catch order-of-magnitude
// regressions, not scheduler noise.
func Gate(rs []Result) error {
	mt, ok1 := Find(rs, "shadow/touch/map")
	pt, ok2 := Find(rs, "shadow/touch/paged")
	if !ok1 || !ok2 {
		return fmt.Errorf("bench: suite missing shadow/touch results")
	}
	if pt.allocsPerOp > mt.allocsPerOp/2 {
		return fmt.Errorf("bench: paged first-touch allocates %.4f/op, more than half of map's %.4f/op",
			pt.allocsPerOp, mt.allocsPerOp)
	}
	for _, name := range []string{"shadow/revisit/paged", "detect/sweep", "htm/access/idle"} {
		r, ok := Find(rs, name)
		if !ok {
			return fmt.Errorf("bench: suite missing %s", name)
		}
		if r.allocsPerOp > 0.1 {
			return fmt.Errorf("bench: %s allocates %.4f/op, steady state should be near zero",
				name, r.allocsPerOp)
		}
	}
	// The conflict directory's claim: at the full-machine transaction count,
	// one ownership-word lookup beats the per-context scan by 2x or better.
	// Gate at 0.75x so scheduler noise cannot trip it without a real
	// regression eating most of the win.
	scan, ok1 := Find(rs, "htm/access/scan")
	dir, ok2 := Find(rs, "htm/access/dir")
	if !ok1 || !ok2 {
		return fmt.Errorf("bench: suite missing htm/access results")
	}
	if dir.nsPerOp > scan.nsPerOp*0.75 {
		return fmt.Errorf("bench: directory access %.2f ns/op, more than 0.75x of scan's %.2f ns/op",
			dir.nsPerOp, scan.nsPerOp)
	}
	// The tag backend tracks no read/write sets, so a transactional access
	// does strictly less work than the directory's: conflict test plus one
	// tag store, no cache Touch. It must not lose to the dir row.
	tag, ok := Find(rs, "htm/access/tag")
	if !ok {
		return fmt.Errorf("bench: suite missing htm/access/tag")
	}
	if tag.Ns() > dir.Ns() {
		return fmt.Errorf("bench: tag access %.2f ns/op, slower than directory's %.2f ns/op despite tracking no sets",
			tag.Ns(), dir.Ns())
	}
	// The sparse/delta clock claim: at 1024 threads with idle skew the
	// join path must beat the dense reference by 2x or better, and at 8
	// threads it may cost at most 5% (plus a same-run noise allowance —
	// the 8-thread rows are fast enough that scheduler jitter alone can
	// exceed 5%).
	d1024, ok1 := Find(rs, "detect/join/dense/1024")
	s1024, ok2 := Find(rs, "detect/join/sparse/1024")
	if !ok1 || !ok2 {
		return fmt.Errorf("bench: suite missing detect/join/1024 results")
	}
	if s1024.Ns() > d1024.Ns()*0.5 {
		return fmt.Errorf("bench: sparse join at 1024 threads %.2f ns/op, less than 2x faster than dense's %.2f ns/op",
			s1024.Ns(), d1024.Ns())
	}
	d8, ok1 := Find(rs, "detect/join/dense/8")
	s8, ok2 := Find(rs, "detect/join/sparse/8")
	if !ok1 || !ok2 {
		return fmt.Errorf("bench: suite missing detect/join/8 results")
	}
	if limit := d8.Ns() * 1.05 * 1.25; s8.Ns() > limit {
		return fmt.Errorf("bench: sparse join at 8 threads %.2f ns/op exceeds dense's %.2f ns/op x 1.05 budget",
			s8.Ns(), d8.Ns())
	}
	// Decoded dispatch must not lose to the tree walk it replaced.
	tree, ok1 := Find(rs, "sim/dispatch/tree")
	dec, ok2 := Find(rs, "sim/dispatch/decoded")
	if !ok1 || !ok2 {
		return fmt.Errorf("bench: suite missing sim/dispatch results")
	}
	if dec.nsPerOp > tree.nsPerOp {
		return fmt.Errorf("bench: decoded dispatch %.0f ns/op, slower than tree walk's %.0f ns/op",
			dec.nsPerOp, tree.nsPerOp)
	}
	return gateShards(rs)
}

// GateBaseline checks the current run against a committed trajectory
// baseline: the seam introduced by the ConflictBackend extraction may cost
// the directory hot path at most 5% over the pre-refactor number, and is
// given a further noise allowance because trajectory files are recorded on
// different machines and runners than the gate runs on. Rows present in
// only one of the two suites are ignored — the gate compares shared rows.
func GateBaseline(rs, baseline []Result) error {
	const (
		seamBudget = 1.05 // the refactor's advertised ceiling
		noise      = 1.25 // cross-machine wall-clock tolerance
	)
	for _, name := range []string{"htm/access/dir", "htm/access/scan", "htm/access/idle",
		"detect/join/sparse/8", "detect/join/sparse/1024", "clock/collapse",
		"detect/shard/1"} {
		cur, ok1 := Find(rs, name)
		base, ok2 := Find(baseline, name)
		if !ok1 || !ok2 {
			continue
		}
		if limit := base.Ns() * seamBudget * noise; cur.Ns() > limit {
			return fmt.Errorf("bench: %s %.2f ns/op exceeds baseline %.2f ns/op x %.2f budget",
				name, cur.Ns(), base.Ns(), seamBudget*noise)
		}
	}
	return nil
}
