package bench

import "testing"

// TestWireRows pins the v2 wire win on the bench trace: the varint+delta
// encoding must be at least 2x smaller per event than v1's fixed records.
func TestWireRows(t *testing.T) {
	rows, err := WireRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Version != 1 || rows[1].Version != 2 {
		t.Fatalf("want v1+v2 rows, got %+v", rows)
	}
	if rows[1].Bytes*2 >= rows[0].Bytes {
		t.Fatalf("v2 %d bytes, not 2x smaller than v1's %d", rows[1].Bytes, rows[0].Bytes)
	}
}

// TestShardScalingConsistent: every shard count must find the same races on
// the bench trace (throughput may differ; answers may not).
func TestShardScalingConsistent(t *testing.T) {
	rows, err := ShardScaling([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Races != rows[1].Races {
		t.Fatalf("shard counts disagree: %+v", rows)
	}
	if rows[0].Races == 0 {
		t.Fatal("bench trace finds no races; throughput rows measure nothing interesting")
	}
}
