package bench

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/detect"
	"testing"
)

// joinLive is the size of the live subset the detect/join rows rotate sync
// operations through: fixed while the total thread count scales, the
// idle-thread skew the sparse representation exists for.
const joinLive = 8

// liveTIDs spreads the live subset across the fleet. High tids must
// participate or the dense path never pays O(threads): dense clocks are
// grow-on-demand, so a live set clustered at tid 0..7 keeps every dense
// clock at length 8 regardless of fleet size.
func liveTIDs(threads int) []clock.TID {
	live := make([]clock.TID, joinLive)
	for i := range live {
		live[i] = clock.TID(i * threads / joinLive)
	}
	return live
}

// benchDetectJoin measures the detector's vector-clock join path at a given
// thread count: lock handoffs rotating through a small live subset of a
// large fleet. On the dense path every Release/Acquire pays O(threads); on
// the sparse path it pays O(live entries), with the periodic epoch-collapse
// rounds amortized in.
func benchDetectJoin(threads int, refDense bool) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := detect.Config{RefDense: refDense}
		d := detect.NewWith(cfg)
		for tid := 1; tid < threads; tid++ {
			d.Fork(0, clock.TID(tid))
		}
		live := liveTIDs(threads)
		locks := []detect.SyncID{1, 2, 3, 4}
		// Warm the sync clocks so the timed loop is steady state.
		for i := 0; i < 2*len(locks); i++ {
			d.Release(live[i%joinLive], locks[i%len(locks)])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := locks[i%len(locks)]
			d.Release(live[i%joinLive], l)
			d.Acquire(live[(i+1)%joinLive], l)
		}
	}
}

// benchClockCollapse measures one epoch-collapse round over a 1024-thread
// fleet with idle skew: NextBase over every thread clock plus the Rebase of
// each. This is the periodic cost the sparse join rows amortize.
func benchClockCollapse() func(b *testing.B) {
	return func(b *testing.B) {
		const threads = 1024
		d := detect.NewWith(detect.Config{CollapseEvery: -1})
		for tid := 1; tid < threads; tid++ {
			d.Fork(0, clock.TID(tid))
		}
		live := liveTIDs(threads)
		locks := []detect.SyncID{1, 2, 3, 4}
		for i := 0; i < 64; i++ {
			l := locks[i%len(locks)]
			d.Release(live[i%joinLive], l)
			d.Acquire(live[(i+1)%joinLive], l)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Collapse()
		}
	}
}

// joinBenches returns the detect/join scaling rows plus the collapse-round
// row, in suite order.
func joinBenches() []microBench {
	var out []microBench
	for _, threads := range []int{8, 64, 256, 1024} {
		out = append(out,
			microBench{fmt.Sprintf("detect/join/dense/%d", threads), benchDetectJoin(threads, true)},
			microBench{fmt.Sprintf("detect/join/sparse/%d", threads), benchDetectJoin(threads, false)},
		)
	}
	out = append(out, microBench{"clock/collapse", benchClockCollapse()})
	return out
}
