package bench

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/htm"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// Hot-path rows for the simulate→HTM inner loop, paired old/new in one
// binary like the shadow map/paged rows: the HTM's reference conflict scan
// (Config.RefScan) against the line-ownership directory, and the engine's
// reference tree-walk interpreter (Config.RefWalk) against the decoded
// instruction stream.

// benchHTMAccess measures a transactional access with 8 concurrent
// transactions on disjoint footprints — the paper's full-machine case, where
// the reference resolver probes every other context's caches on every access
// and the directory answers with one lookup. Footprints (256 lines per
// transaction) fit the tracking caches, so the steady state measures
// conflict resolution, not capacity-abort churn.
func benchHTMAccess(refScan bool) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := htm.DefaultConfig()
		cfg.RefScan = refScan
		h := htm.New(cfg)
		for tid := 0; tid < 8; tid++ {
			h.Begin(tid)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tid := i & 7
			h.Access(tid, memmodel.Addr(uint64(tid)<<20|uint64(i&0xff)<<6), i&1 == 0)
			if _, ok := h.Pending(tid); ok {
				h.Resolve(tid)
				h.Begin(tid)
			}
		}
	}
}

// benchHTMBackendAccess is benchHTMAccess for the pluggable conflict
// backends: the same 8-transaction disjoint-footprint loop against the
// backend selected by name, so one suite compares dir, tag, and bounded on
// identical work. lineMask bounds the per-transaction footprint — the tag
// row keeps the dir row's 256 lines (tags track no sets, footprint size is
// free), while the bounded row uses 16 lines so both capped sets stay below
// their entry limits and the row measures conflict testing, not overflow
// dooms.
func benchHTMBackendAccess(backend string, lineMask uint64) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := htm.DefaultConfig()
		cfg.Backend = backend
		h := htm.New(cfg)
		for tid := 0; tid < 8; tid++ {
			h.Begin(tid)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tid := i & 7
			h.Access(tid, memmodel.Addr(uint64(tid)<<20|(uint64(i)&lineMask)<<6), i&1 == 0)
			if _, ok := h.Pending(tid); ok {
				h.Resolve(tid)
				h.Begin(tid)
			}
		}
	}
}

// benchHTMIdle measures the non-transactional access with zero transactions
// active — the empty-machine fast path that dominates every workload.
func benchHTMIdle() func(b *testing.B) {
	return func(b *testing.B) {
		h := htm.New(htm.DefaultConfig())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Access(i&7, memmodel.Addr(uint64(i)<<3), i&1 == 0)
		}
	}
}

// dispatchProgram is the fixed instruction mix the interpreter rows execute:
// one worker running a 4000-iteration loop of two accesses and a compute,
// with interrupts and jitter disabled. A single worker keeps the scheduler's
// clock-tie sampling out of the loop, so ns/op differences come from
// instruction fetch and dispatch — the axis the two rows differ on.
func dispatchProgram() *sim.Program {
	body := []sim.Instr{&sim.Loop{ID: 1, Count: 4000, Body: []sim.Instr{
		&sim.MemAccess{Write: true, Addr: sim.Indexed(0, 1), Site: 1},
		&sim.MemAccess{Addr: sim.Random(1<<20, 4096), Site: 2},
		&sim.Compute{Cycles: 3},
	}}}
	return &sim.Program{Workers: [][]sim.Instr{body}}
}

// benchSimDispatch measures one full engine run of the fixed program; each
// iteration executes the same ~12k instructions, so ns/op compares
// interpreter dispatch cost directly.
func benchSimDispatch(refWalk bool) func(b *testing.B) {
	return func(b *testing.B) {
		p := dispatchProgram()
		cfg := sim.Config{
			Seed:      1,
			Cores:     4,
			HWThreads: 8,
			MaxSteps:  1 << 22,
			Cost:      cost.Default(),
			RefWalk:   refWalk,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.NewEngine(cfg).Run(p, &sim.NopRuntime{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
