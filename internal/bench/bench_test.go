package bench

import (
	"strings"
	"testing"
	"time"
)

func synthetic(name string, ns, allocs float64) Result {
	r := Result{Name: name}
	r.nsPerOp, r.allocsPerOp = ns, allocs
	return r
}

func healthySuite() []Result {
	return []Result{
		synthetic("shadow/touch/map", 100, 1.0),
		synthetic("shadow/touch/paged", 40, 0.01),
		synthetic("shadow/revisit/paged", 10, 0),
		synthetic("detect/sweep", 50, 0.001),
		synthetic("htm/access/idle", 2, 0),
		synthetic("htm/access/scan", 30, 0),
		synthetic("htm/access/dir", 14, 0),
		synthetic("htm/access/tag", 11, 0),
		synthetic("htm/access/bounded", 16, 0),
		synthetic("sim/dispatch/tree", 250000, 40),
		synthetic("sim/dispatch/decoded", 220000, 45),
		synthetic("detect/join/dense/8", 40, 0),
		synthetic("detect/join/sparse/8", 36, 0.02),
		synthetic("detect/join/dense/1024", 1400, 0),
		synthetic("detect/join/sparse/1024", 250, 0.02),
		synthetic("clock/collapse", 37000, 5),
		synthetic("detect/shard/1", 1000000, 100),
		synthetic("detect/shard/4", 400000, 100),
		synthetic("detect/shard/8", 300000, 100),
	}
}

func TestGatePassesOnHealthySuite(t *testing.T) {
	if err := Gate(healthySuite()); err != nil {
		t.Fatalf("Gate rejected healthy suite: %v", err)
	}
}

func TestGateRejectsHotPathRegressions(t *testing.T) {
	rs := healthySuite()
	rs[6] = synthetic("htm/access/dir", 28, 0) // lead over scan collapsed
	if err := Gate(rs); err == nil || !strings.Contains(err.Error(), "directory access") {
		t.Fatalf("Gate accepted directory regression: %v", err)
	}
	rs[6] = synthetic("htm/access/dir", 14, 0)
	rs[7] = synthetic("htm/access/tag", 15, 0) // tag lost its lead over dir
	if err := Gate(rs); err == nil || !strings.Contains(err.Error(), "tag access") {
		t.Fatalf("Gate accepted tag regression: %v", err)
	}
	rs[7] = synthetic("htm/access/tag", 11, 0)
	rs[10] = synthetic("sim/dispatch/decoded", 260000, 45) // lost to tree walk
	if err := Gate(rs); err == nil || !strings.Contains(err.Error(), "decoded dispatch") {
		t.Fatalf("Gate accepted dispatch regression: %v", err)
	}
	rs[10] = synthetic("sim/dispatch/decoded", 220000, 45)
	rs[4] = synthetic("htm/access/idle", 2, 0.5) // fast path allocating
	if err := Gate(rs); err == nil || !strings.Contains(err.Error(), "htm/access/idle") {
		t.Fatalf("Gate accepted idle-path allocations: %v", err)
	}
	rs[4] = synthetic("htm/access/idle", 2, 0)
	rs[14] = synthetic("detect/join/sparse/1024", 800, 0.02) // lost the 2x scaling win
	if err := Gate(rs); err == nil || !strings.Contains(err.Error(), "sparse join") {
		t.Fatalf("Gate accepted sparse join scaling regression: %v", err)
	}
	rs[14] = synthetic("detect/join/sparse/1024", 250, 0.02)
	rs[12] = synthetic("detect/join/sparse/8", 60, 0.02) // small-fleet regression
	if err := Gate(rs); err == nil || !strings.Contains(err.Error(), "join at 8") {
		t.Fatalf("Gate accepted small-fleet sparse join regression: %v", err)
	}
	rs[12] = synthetic("detect/join/sparse/8", 36, 0.02)
	// 8-shard replay slower than 2x the sequential one fails the shard gate
	// on every core-count branch.
	rs[18] = synthetic("detect/shard/8", 2100000, 100)
	if err := Gate(rs); err == nil || !strings.Contains(err.Error(), "8-shard replay") {
		t.Fatalf("Gate accepted sharded-detection regression: %v", err)
	}
}

func TestGateRejectsAllocRegression(t *testing.T) {
	rs := []Result{
		synthetic("shadow/touch/map", 100, 1.0),
		synthetic("shadow/touch/paged", 40, 0.9), // less than 2x better
		synthetic("shadow/revisit/paged", 10, 0),
		synthetic("detect/sweep", 50, 0),
	}
	if err := Gate(rs); err == nil || !strings.Contains(err.Error(), "first-touch") {
		t.Fatalf("Gate accepted alloc regression: %v", err)
	}
	rs[1] = synthetic("shadow/touch/paged", 40, 0.01)
	rs[3] = synthetic("detect/sweep", 50, 0.5) // steady state allocating
	if err := Gate(rs); err == nil || !strings.Contains(err.Error(), "detect/sweep") {
		t.Fatalf("Gate accepted steady-state allocations: %v", err)
	}
}

func TestGateRejectsMissingResults(t *testing.T) {
	if err := Gate(nil); err == nil {
		t.Fatal("Gate accepted empty suite")
	}
}

func TestResultFormatting(t *testing.T) {
	br := testing.BenchmarkResult{N: 2000, T: 3 * time.Microsecond, MemAllocs: 4, MemBytes: 128}
	r := makeResult("x", br)
	if r.NsPerOp != "1.50" {
		t.Errorf("NsPerOp = %q, want 1.50", r.NsPerOp)
	}
	if r.AllocsPerOp != "0.0020" {
		t.Errorf("AllocsPerOp = %q, want 0.0020", r.AllocsPerOp)
	}
	if r.Ns() != 1.5 {
		t.Errorf("Ns() = %v, want 1.5", r.Ns())
	}
}

// TestMicroSuiteSmoke runs the real suite components for a handful of
// iterations each — enough to catch panics and wiring mistakes without the
// full -bench-out measurement cost. The full suite (and its regression gate)
// runs in CI via txbench -bench-out -bench-gate.
func TestMicroSuiteSmoke(t *testing.T) {
	for _, f := range microFuncs() {
		n := 2048
		if strings.HasPrefix(f.name, "detect/shard/") {
			n = 1 // one op is a full 120k-event sharded replay
		}
		f.fn(&testing.B{N: n})
	}
}

func TestGateBaseline(t *testing.T) {
	baseline := []Result{
		{Name: "htm/access/dir", NsPerOp: "15.02"},
		{Name: "htm/access/scan", NsPerOp: "32.90"},
	}
	cur := []Result{
		synthetic("htm/access/dir", 16, 0),
		synthetic("htm/access/scan", 33, 0),
	}
	if err := GateBaseline(cur, baseline); err != nil {
		t.Fatalf("GateBaseline rejected a within-budget run: %v", err)
	}
	cur[0] = synthetic("htm/access/dir", 15.02*1.05*1.25+1, 0)
	if err := GateBaseline(cur, baseline); err == nil || !strings.Contains(err.Error(), "htm/access/dir") {
		t.Fatalf("GateBaseline accepted a seam-cost regression: %v", err)
	}
	// Rows absent from either side are not compared.
	if err := GateBaseline([]Result{synthetic("htm/access/scan", 33, 0)}, baseline); err != nil {
		t.Fatalf("GateBaseline rejected on missing rows: %v", err)
	}
}
