// Package prng provides the repository's one pseudo-random number source: a
// small, copyable splitmix64 generator (Steele et al., "Fast Splittable
// Pseudorandom Number Generators").
//
// Every component that needs randomness — per-thread address draws and
// scheduler jitter in internal/sim, trial-seed derivation in internal/runner,
// and shadow-cell replacement in internal/shadow — draws from this algorithm
// with an explicit seed, so a run is a pure function of its seed and the
// provenance of every random choice is documented in one place.
package prng

// PRNG is a splitmix64 generator. The zero value is a valid generator seeded
// with 0; copying the struct forks the stream (both copies replay the same
// tail), which is what lets the TxRace runtime snapshot a thread's generator
// at transaction begin and replay the exact same addresses on abort.
type PRNG struct {
	state uint64
}

// New returns a generator seeded with s.
func New(s uint64) PRNG { return PRNG{state: s} }

// Next returns the next 64 random bits.
func (p *PRNG) Next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (p *PRNG) Intn(n int64) int64 {
	if n <= 0 {
		panic("prng: Intn requires positive bound")
	}
	return int64(p.Next() % uint64(n))
}

// Uint64n returns a value in [0, n). n must be positive.
func (p *PRNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n requires positive bound")
	}
	return p.Next() % n
}

// Float64 returns a value in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Next()>>11) / (1 << 53)
}

// Bool returns true with probability prob.
func (p *PRNG) Bool(prob float64) bool { return p.Float64() < prob }
