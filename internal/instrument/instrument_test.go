package instrument

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

func acc(a memmodel.Addr, site sim.SiteID) *sim.MemAccess {
	return &sim.MemAccess{Addr: sim.Fixed(a), Site: site}
}

func localAcc(a memmodel.Addr) *sim.MemAccess {
	return &sim.MemAccess{Addr: sim.Fixed(a), Site: 99, Local: true}
}

func manyAccs(n int) []sim.Instr {
	out := make([]sim.Instr, n)
	for i := range out {
		out[i] = acc(memmodel.Addr(64*(i+1)), sim.SiteID(i+1))
	}
	return out
}

func TestForTSanHooksNonLocal(t *testing.T) {
	p := &sim.Program{
		Setup:   []sim.Instr{acc(64, 1), localAcc(128)},
		Workers: [][]sim.Instr{{acc(192, 2)}},
	}
	ip := ForTSan(p)
	hooked, local := 0, 0
	check := func(body []sim.Instr) {
		sim.ForEachInstr(body, func(in sim.Instr) {
			if m, ok := in.(*sim.MemAccess); ok {
				if m.Hooked {
					hooked++
				}
				if m.Local && m.Hooked {
					local++
				}
			}
		})
	}
	check(ip.Setup)
	check(ip.Workers[0])
	if hooked != 2 {
		t.Fatalf("hooked = %d, want 2", hooked)
	}
	if local != 0 {
		t.Fatal("local access hooked")
	}
}

func TestForTSanDoesNotMutateOriginal(t *testing.T) {
	orig := acc(64, 1)
	p := &sim.Program{Workers: [][]sim.Instr{{orig}}}
	ForTSan(p)
	if orig.Hooked {
		t.Fatal("instrumentation mutated the input program")
	}
}

func TestForTxRaceDoesNotMutateOriginal(t *testing.T) {
	orig := acc(64, 1)
	l := &sim.Loop{ID: 1, Count: 3, Body: []sim.Instr{acc(128, 2)}}
	p := &sim.Program{Workers: [][]sim.Instr{{orig, l}}}
	ForTxRace(p, DefaultOptions())
	if orig.Hooked {
		t.Fatal("mutated original access")
	}
	if len(l.Body) != 1 {
		t.Fatal("mutated original loop body (LoopCheck inserted in place)")
	}
}

// markBalance walks a worker body and checks TxBegin/TxEnd alternation for
// any dynamic execution: since regions never span loop back-edges in the
// instrumented IR (loops containing boundaries are recursively
// instrumented), static alternation per nesting level implies dynamic
// balance.
func markBalance(t *testing.T, body []sim.Instr) {
	t.Helper()
	open := false
	for _, in := range body {
		switch in := in.(type) {
		case *sim.TxBegin:
			if open {
				t.Fatal("TxBegin while region open")
			}
			open = true
		case *sim.TxEnd:
			if !open {
				t.Fatal("TxEnd without open region")
			}
			open = false
		case *sim.Lock, *sim.Unlock, *sim.Signal, *sim.Wait, *sim.Barrier:
			if open {
				t.Fatalf("sync instruction %T inside a region", in)
			}
		case *sim.Syscall:
			if open && !in.Hidden {
				t.Fatal("visible syscall inside a region")
			}
		case *sim.Loop:
			if containsBoundary(in.Body) {
				if open {
					t.Fatal("boundary-carrying loop inside a region")
				}
				markBalance(t, in.Body)
			}
		}
	}
	if open {
		t.Fatal("unclosed region at body end")
	}
}

func TestTransactionalizeBalancedMarks(t *testing.T) {
	p := &sim.Program{Workers: [][]sim.Instr{
		append(append(manyAccs(6),
			&sim.Lock{M: 1}, acc(8, 50), &sim.Unlock{M: 1}),
			&sim.Loop{ID: 1, Count: 4, Body: []sim.Instr{
				acc(16, 51),
				&sim.Syscall{Name: "s", Cycles: 30},
				acc(24, 52),
			}},
			&sim.Signal{C: 2},
			&sim.Syscall{Name: "t", Cycles: 30},
		),
	}}
	ip := ForTxRace(p, DefaultOptions())
	markBalance(t, ip.Workers[0])
}

func TestSmallRegionFlag(t *testing.T) {
	p := &sim.Program{Workers: [][]sim.Instr{
		append(append([]sim.Instr{}, manyAccs(3)...),
			append([]sim.Instr{&sim.Syscall{Name: "s", Cycles: 30}}, manyAccs(6)...)...),
	}}
	ip := ForTxRace(p, Options{K: 5, LoopChecks: true})
	var begins []*sim.TxBegin
	sim.ForEachInstr(ip.Workers[0], func(in sim.Instr) {
		if b, ok := in.(*sim.TxBegin); ok {
			begins = append(begins, b)
		}
	})
	if len(begins) != 2 {
		t.Fatalf("regions = %d, want 2", len(begins))
	}
	if !begins[0].Small || begins[0].StaticAccesses != 3 {
		t.Fatalf("first region: %+v, want Small with 3 accesses", begins[0])
	}
	if begins[1].Small || begins[1].StaticAccesses != 6 {
		t.Fatalf("second region: %+v, want non-Small with 6 accesses", begins[1])
	}
}

func TestLoopCountWeighsRegionSize(t *testing.T) {
	// A loop of 3 iterations with 2 accesses counts as 6 ≥ K.
	p := &sim.Program{Workers: [][]sim.Instr{{
		&sim.Loop{ID: 1, Count: 3, Body: []sim.Instr{acc(8, 1), acc(16, 2)}},
	}}}
	ip := ForTxRace(p, Options{K: 5, LoopChecks: false})
	var begins []*sim.TxBegin
	sim.ForEachInstr(ip.Workers[0], func(in sim.Instr) {
		if b, ok := in.(*sim.TxBegin); ok {
			begins = append(begins, b)
		}
	})
	if len(begins) != 1 || begins[0].Small {
		t.Fatalf("begins = %+v, want one non-Small", begins)
	}
}

func TestAccessFreeSpanNotTransactionalized(t *testing.T) {
	p := &sim.Program{Workers: [][]sim.Instr{{
		&sim.Compute{Cycles: 100},
		&sim.Syscall{Name: "s", Cycles: 30},
		localAcc(8), // local-only: no hooks → no region
	}}}
	ip := ForTxRace(p, DefaultOptions())
	sim.ForEachInstr(ip.Workers[0], func(in sim.Instr) {
		if _, ok := in.(*sim.TxBegin); ok {
			t.Fatal("region created for hook-free span")
		}
	})
}

func TestLoopChecksInserted(t *testing.T) {
	p := &sim.Program{Workers: [][]sim.Instr{{
		&sim.Loop{ID: 7, Count: 100, Body: []sim.Instr{acc(8, 1)}},
	}}}
	ip := ForTxRace(p, DefaultOptions())
	found := 0
	sim.ForEachInstr(ip.Workers[0], func(in sim.Instr) {
		if lc, ok := in.(*sim.LoopCheck); ok {
			if lc.ID != 7 {
				t.Fatalf("LoopCheck id = %d, want 7", lc.ID)
			}
			found++
		}
	})
	if found != 1 {
		t.Fatalf("LoopChecks = %d, want 1", found)
	}
}

func TestLoopChecksNested(t *testing.T) {
	p := &sim.Program{Workers: [][]sim.Instr{{
		&sim.Loop{ID: 1, Count: 10, Body: []sim.Instr{
			&sim.Loop{ID: 2, Count: 10, Body: []sim.Instr{acc(8, 1)}},
		}},
	}}}
	ip := ForTxRace(p, DefaultOptions())
	ids := map[sim.LoopID]bool{}
	sim.ForEachInstr(ip.Workers[0], func(in sim.Instr) {
		if lc, ok := in.(*sim.LoopCheck); ok {
			ids[lc.ID] = true
		}
	})
	if !ids[1] || !ids[2] {
		t.Fatalf("nested LoopChecks missing: %v", ids)
	}
}

func TestNoLoopChecksWhenDisabled(t *testing.T) {
	p := &sim.Program{Workers: [][]sim.Instr{{
		&sim.Loop{ID: 7, Count: 100, Body: []sim.Instr{acc(8, 1)}},
	}}}
	ip := ForTxRace(p, Options{K: 5, LoopChecks: false})
	sim.ForEachInstr(ip.Workers[0], func(in sim.Instr) {
		if _, ok := in.(*sim.LoopCheck); ok {
			t.Fatal("LoopCheck inserted with LoopChecks=false")
		}
	})
}

func TestSetupTeardownLeftUninstrumented(t *testing.T) {
	p := &sim.Program{
		Setup:    []sim.Instr{acc(8, 1)},
		Workers:  [][]sim.Instr{manyAccs(6)},
		Teardown: []sim.Instr{acc(16, 2)},
	}
	ip := ForTxRace(p, DefaultOptions())
	for _, body := range [][]sim.Instr{ip.Setup, ip.Teardown} {
		sim.ForEachInstr(body, func(in sim.Instr) {
			switch in := in.(type) {
			case *sim.TxBegin, *sim.TxEnd:
				t.Fatal("single-threaded phase transactionalized")
			case *sim.MemAccess:
				if in.Hooked {
					t.Fatal("single-threaded phase hooked")
				}
			}
		})
	}
}

func TestHiddenSyscallNotABoundary(t *testing.T) {
	p := &sim.Program{Workers: [][]sim.Instr{
		append(append(manyAccs(3),
			&sim.Syscall{Name: "lib", Cycles: 10, Hidden: true}),
			manyAccs(3)...),
	}}
	ip := ForTxRace(p, DefaultOptions())
	begins := 0
	sim.ForEachInstr(ip.Workers[0], func(in sim.Instr) {
		if _, ok := in.(*sim.TxBegin); ok {
			begins++
		}
	})
	if begins != 1 {
		t.Fatalf("hidden syscall split the region: %d begins", begins)
	}
}

func TestKDefaultApplied(t *testing.T) {
	p := &sim.Program{Workers: [][]sim.Instr{manyAccs(4)}}
	ip := ForTxRace(p, Options{}) // zero K → default 5
	sim.ForEachInstr(ip.Workers[0], func(in sim.Instr) {
		if b, ok := in.(*sim.TxBegin); ok && !b.Small {
			t.Fatal("4-access region not Small under default K=5")
		}
	})
}
