package instrument

import (
	"math/rand"

	"repro/internal/sim"
)

// SyscallProfile is the result of profiling a program for system calls made
// by third-party libraries whose sources the instrumenter cannot see (§7).
// The paper runs such libraries under a dynamic binary instrumentation tool
// (Pin/Valgrind/DynamoRIO) with representative input to identify the library
// functions that enter the kernel, then cuts transactions around them.
type SyscallProfile struct {
	// Found are the names of hidden syscalls the profiler observed.
	Found map[string]bool
	// Missed counts hidden-syscall sites the profiling input never reached —
	// these stay invisible and keep causing unknown aborts at runtime, the
	// misprofiling cost §7 bounds ("misprofiling only adds runtime overhead,
	// and does not harm detection coverage").
	Missed int
}

// ProfileHiddenSyscalls models the §7 binary-instrumentation profiling run:
// each hidden syscall site is exercised by the representative input with
// probability coverage, independently per site. A coverage of 1 models a
// perfect profile; lower values model inputs that miss code paths.
func ProfileHiddenSyscalls(p *sim.Program, coverage float64, seed int64) *SyscallProfile {
	rng := rand.New(rand.NewSource(seed))
	prof := &SyscallProfile{Found: make(map[string]bool)}
	visit := func(body []sim.Instr) {
		sim.ForEachInstr(body, func(in sim.Instr) {
			sc, ok := in.(*sim.Syscall)
			if !ok || !sc.Hidden {
				return
			}
			if prof.Found[sc.Name] {
				return
			}
			if rng.Float64() < coverage {
				prof.Found[sc.Name] = true
			} else {
				prof.Missed++
			}
		})
	}
	visit(p.Setup)
	for _, w := range p.Workers {
		visit(w)
	}
	visit(p.Teardown)
	return prof
}

// ApplySyscallProfile returns a copy of p in which every hidden syscall the
// profile identified is promoted to a known (visible) syscall, so the
// transactionalization pass cuts regions around it instead of letting it
// abort transactions with an unknown status at runtime.
func ApplySyscallProfile(p *sim.Program, prof *SyscallProfile) *sim.Program {
	var promote func(body []sim.Instr) []sim.Instr
	promote = func(body []sim.Instr) []sim.Instr {
		out := make([]sim.Instr, 0, len(body))
		for _, in := range body {
			switch in := in.(type) {
			case *sim.Syscall:
				if in.Hidden && prof.Found[in.Name] {
					cp := *in
					cp.Hidden = false
					out = append(out, &cp)
					continue
				}
				out = append(out, in)
			case *sim.Loop:
				out = append(out, &sim.Loop{ID: in.ID, Count: in.Count, Body: nil})
				l := out[len(out)-1].(*sim.Loop)
				l.Body = promote(in.Body)
			default:
				out = append(out, in)
			}
		}
		return out
	}
	return &sim.Program{
		Name:     p.Name,
		Setup:    promote(p.Setup),
		Workers:  promoteAll(p.Workers, promote),
		Teardown: promote(p.Teardown),
	}
}

func promoteAll(ws [][]sim.Instr, f func([]sim.Instr) []sim.Instr) [][]sim.Instr {
	out := make([][]sim.Instr, len(ws))
	for i, w := range ws {
		out[i] = f(w)
	}
	return out
}
