// Package instrument is the compile-time half of TxRace (§4.1, §4.3, §7): a
// transformation pass over the sim IR that plays the role of the paper's
// LLVM pass. It
//
//   - hooks memory accesses for the detector, skipping accesses the static
//     analysis proves race-free (thread-local data), as TSan does;
//   - transforms synchronization-free regions into transactions, inserting
//     TxBegin at thread entry and after every synchronization operation or
//     known system call, and TxEnd before them and at thread exit;
//   - leaves the single-threaded Setup/Teardown phases of the program
//     uninstrumented — the effect of the paper's function-cloning
//     optimization for code invoked only in single-threaded mode;
//   - marks regions with fewer than K static memory operations as Small so
//     the runtime routes them to the slow path;
//   - inserts LoopCheck marks at the end of cut-candidate loop bodies for
//     the loop-cut optimization and its capacity-abort attribution.
//
// Hidden system calls (Syscall.Hidden) model third-party library calls the
// profiler missed (§7): no transaction cut is inserted, so on the fast path
// they surface as unknown aborts at runtime, which is precisely the paper's
// stated failure mode for misprofiling.
package instrument

import "repro/internal/sim"

// Options configures the pass.
type Options struct {
	// K is the small-region threshold: regions with fewer than K static
	// memory operations are marked Small. The paper uses K = 5.
	K int
	// LoopChecks controls insertion of LoopCheck marks into boundary-free
	// loops (required by both loop-cut schemes).
	LoopChecks bool
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options { return Options{K: 5, LoopChecks: true} }

// ForTSan returns a copy of p with every non-local memory access hooked, in
// all phases — the always-on ThreadSanitizer build.
func ForTSan(p *sim.Program) *sim.Program {
	return &sim.Program{
		Name:     p.Name,
		Setup:    hookBody(p.Setup),
		Workers:  hookWorkers(p.Workers),
		Teardown: hookBody(p.Teardown),
	}
}

func hookWorkers(ws [][]sim.Instr) [][]sim.Instr {
	out := make([][]sim.Instr, len(ws))
	for i, w := range ws {
		out[i] = hookBody(w)
	}
	return out
}

// hookBody clones body, setting Hooked on every non-local access.
func hookBody(body []sim.Instr) []sim.Instr {
	out := make([]sim.Instr, 0, len(body))
	for _, in := range body {
		switch in := in.(type) {
		case *sim.MemAccess:
			cp := *in
			cp.Hooked = !cp.Local
			out = append(out, &cp)
		case *sim.Loop:
			out = append(out, &sim.Loop{ID: in.ID, Count: in.Count, Body: hookBody(in.Body)})
		default:
			out = append(out, in)
		}
	}
	return out
}

// ForTxRace returns a copy of p instrumented for the TxRace runtime: hooked
// accesses plus transaction marks in the worker bodies. Setup and Teardown
// stay uninstrumented (single-threaded clones).
func ForTxRace(p *sim.Program, opts Options) *sim.Program {
	if opts.K <= 0 {
		opts.K = 5
	}
	ws := make([][]sim.Instr, len(p.Workers))
	for i, w := range p.Workers {
		ws[i] = transactionalize(hookBody(w), opts)
	}
	return &sim.Program{
		Name:     p.Name,
		Setup:    cloneBody(p.Setup),
		Workers:  ws,
		Teardown: cloneBody(p.Teardown),
	}
}

func cloneBody(body []sim.Instr) []sim.Instr {
	out := make([]sim.Instr, 0, len(body))
	for _, in := range body {
		switch in := in.(type) {
		case *sim.MemAccess:
			cp := *in
			out = append(out, &cp)
		case *sim.Loop:
			out = append(out, &sim.Loop{ID: in.ID, Count: in.Count, Body: cloneBody(in.Body)})
		default:
			out = append(out, in)
		}
	}
	return out
}

// isBoundary reports whether in ends the current synchronization-free region
// (§4.1): sync operations, and system calls the instrumenter knows about.
func isBoundary(in sim.Instr) bool {
	switch in := in.(type) {
	case *sim.Lock, *sim.Unlock, *sim.RLock, *sim.RUnlock, *sim.WLock,
		*sim.WUnlock, *sim.Signal, *sim.Wait, *sim.Barrier,
		*sim.CondWait, *sim.CondSignal, *sim.CondBroadcast, *sim.AtomicRMW:
		return true
	case *sim.Syscall:
		return !in.Hidden
	default:
		return false
	}
}

// containsBoundary reports whether body (recursively) contains a region
// boundary.
func containsBoundary(body []sim.Instr) bool {
	for _, in := range body {
		if isBoundary(in) {
			return true
		}
		if l, ok := in.(*sim.Loop); ok && containsBoundary(l.Body) {
			return true
		}
	}
	return false
}

// transactionalize inserts TxBegin/TxEnd around maximal boundary-free spans
// and recurses into loops that contain boundaries (each iteration then
// manages its own regions). Spans without any hooked memory access get no
// transaction at all — the paper's reuse of TSan's static race-free results
// (§4.3, optimization 2).
func transactionalize(body []sim.Instr, opts Options) []sim.Instr {
	var out []sim.Instr
	var run []sim.Instr

	flush := func() {
		if len(run) == 0 {
			return
		}
		n := countHooked(run)
		if n == 0 {
			out = append(out, run...)
		} else {
			out = append(out, &sim.TxBegin{Small: n < opts.K, StaticAccesses: n})
			out = append(out, run...)
			out = append(out, &sim.TxEnd{})
		}
		run = nil
	}

	for _, in := range body {
		switch in := in.(type) {
		case *sim.Loop:
			if containsBoundary(in.Body) {
				// The loop body manages its own regions; the loop itself
				// separates the surrounding spans.
				flush()
				out = append(out, &sim.Loop{ID: in.ID, Count: in.Count,
					Body: transactionalize(in.Body, opts)})
				continue
			}
			run = append(run, withLoopChecks(in, opts))
		default:
			if isBoundary(in) {
				flush()
				out = append(out, in)
				continue
			}
			run = append(run, in)
		}
	}
	flush()
	return out
}

// withLoopChecks appends a LoopCheck to the end of a boundary-free loop's
// body (and, recursively, its nested loops) when enabled.
func withLoopChecks(l *sim.Loop, opts Options) *sim.Loop {
	nb := make([]sim.Instr, 0, len(l.Body)+1)
	for _, in := range l.Body {
		if nl, ok := in.(*sim.Loop); ok {
			nb = append(nb, withLoopChecks(nl, opts))
			continue
		}
		nb = append(nb, in)
	}
	if opts.LoopChecks {
		nb = append(nb, &sim.LoopCheck{ID: l.ID})
	}
	return &sim.Loop{ID: l.ID, Count: l.Count, Body: nb}
}

// countHooked returns the static hooked-access count of a span, loop bodies
// multiplied by trip count (the region-size estimate for the K threshold).
func countHooked(body []sim.Instr) int {
	n := 0
	for _, in := range body {
		switch in := in.(type) {
		case *sim.MemAccess:
			if in.Hooked {
				n++
			}
		case *sim.Loop:
			n += countHooked(in.Body) * in.Count
		}
	}
	return n
}
