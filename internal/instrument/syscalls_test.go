package instrument

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func hiddenProg() *sim.Program {
	b := []sim.Instr{}
	b = append(b, manyAccs(6)...)
	b = append(b, &sim.Syscall{Name: "libA", Cycles: 30, Hidden: true})
	b = append(b, manyAccs(6)...)
	b = append(b, &sim.Syscall{Name: "libB", Cycles: 30, Hidden: true})
	b = append(b, manyAccs(6)...)
	other := append(manyAccs(8), &sim.Compute{Cycles: 50})
	return &sim.Program{Name: "hiddenprog", Workers: [][]sim.Instr{b, other}}
}

func TestProfileFullCoverageFindsAll(t *testing.T) {
	p := hiddenProg()
	prof := ProfileHiddenSyscalls(p, 1.0, 1)
	if len(prof.Found) != 2 || prof.Missed != 0 {
		t.Fatalf("profile = %+v", prof)
	}
}

func TestProfileZeroCoverageFindsNone(t *testing.T) {
	prof := ProfileHiddenSyscalls(hiddenProg(), 0, 1)
	if len(prof.Found) != 0 || prof.Missed != 2 {
		t.Fatalf("profile = %+v", prof)
	}
}

func TestApplyProfileEliminatesUnknownAborts(t *testing.T) {
	run := func(p *sim.Program) core.Stats {
		rt := core.NewTxRace(core.Options{})
		cfg := sim.DefaultConfig()
		cfg.InterruptEvery = 0
		cfg.SpawnJitter = 0
		cfg.WakeJitter = 0
		if _, err := sim.NewEngine(cfg).Run(ForTxRace(p, DefaultOptions()), rt); err != nil {
			t.Fatal(err)
		}
		return rt.Stats()
	}

	// Unprofiled: the whole body is one region (hidden calls are not
	// boundaries); its first hidden syscall aborts it, and the slow-path
	// re-execution sails past the second one — a single unknown abort.
	st := run(hiddenProg())
	if st.UnknownAborts != 1 {
		t.Fatalf("unprofiled unknown aborts = %d, want 1", st.UnknownAborts)
	}

	// Fully profiled: the syscalls become region boundaries; no unknowns.
	p := hiddenProg()
	prof := ProfileHiddenSyscalls(p, 1.0, 1)
	st = run(ApplySyscallProfile(p, prof))
	if st.UnknownAborts != 0 {
		t.Fatalf("profiled unknown aborts = %d, want 0", st.UnknownAborts)
	}
	if st.CommittedTxns < 3 {
		t.Fatalf("promoted syscalls should split regions: %+v", st)
	}
}

func TestApplyProfileDoesNotMutateOriginal(t *testing.T) {
	p := hiddenProg()
	prof := ProfileHiddenSyscalls(p, 1.0, 1)
	ApplySyscallProfile(p, prof)
	hidden := 0
	sim.ForEachInstr(p.Workers[0], func(in sim.Instr) {
		if sc, ok := in.(*sim.Syscall); ok && sc.Hidden {
			hidden++
		}
	})
	if hidden != 2 {
		t.Fatalf("original program mutated: %d hidden left", hidden)
	}
}

func TestPartialProfileLeavesResidualUnknowns(t *testing.T) {
	// With the profiler finding only one of the two library calls, exactly
	// the missed one keeps aborting — §7's bounded misprofiling cost.
	p := hiddenProg()
	prof := &SyscallProfile{Found: map[string]bool{"libA": true}, Missed: 1}
	promoted := ApplySyscallProfile(p, prof)
	rt := core.NewTxRace(core.Options{})
	cfg := sim.DefaultConfig()
	cfg.InterruptEvery = 0
	cfg.SpawnJitter = 0
	cfg.WakeJitter = 0
	if _, err := sim.NewEngine(cfg).Run(ForTxRace(promoted, DefaultOptions()), rt); err != nil {
		t.Fatal(err)
	}
	if got := rt.Stats().UnknownAborts; got != 1 {
		t.Fatalf("unknown aborts = %d, want 1 (only the missed call)", got)
	}
}
