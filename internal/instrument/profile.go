package instrument

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Profile performs the paper's offline profiling run (§4.3): it executes the
// program once under the TxRace runtime in DynLoopcut mode — which learns,
// per loop, the largest iteration count that commits without a capacity
// abort — and harvests the learned thresholds. Feeding the result into
// Options.Thresholds with CutMode ProfCut gives TxRace-ProfLoopcut, which
// avoids even the very first capacity abort of each hot loop.
//
// On the paper's toolchain the capacity-abort→loop attribution came from the
// Last Branch Record; here it comes from the runtime's LoopCheck tracking,
// which the DESIGN.md substitution table documents.
func Profile(p *sim.Program, cfg sim.Config, opts core.Options) (core.LoopThresholds, error) {
	ip := ForTxRace(p, DefaultOptions())
	opts.LoopCut = core.DynCut
	rt := core.NewTxRace(opts)
	eng := sim.NewEngine(cfg)
	if _, err := eng.Run(ip, rt); err != nil {
		return nil, err
	}
	return rt.Thresholds().Clone(), nil
}
