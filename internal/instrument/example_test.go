package instrument_test

import (
	"os"

	"repro/internal/instrument"
	"repro/internal/sim"
)

// Transactionalization (§4.1) on a tiny worker: the span before the lock
// becomes one transaction; the critical section becomes another; the final
// two accesses are below the K threshold and are marked Small, so the
// runtime will route them to the software detector (§4.3).
func ExampleForTxRace() {
	body := []sim.Instr{
		&sim.MemAccess{Write: true, Addr: sim.Fixed(0x100), Site: 1},
		&sim.MemAccess{Addr: sim.Fixed(0x140), Site: 2},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(0x180), Site: 3},
		&sim.MemAccess{Addr: sim.Fixed(0x1c0), Site: 4},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(0x200), Site: 5},
		&sim.Lock{M: 1},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(0x240), Site: 6},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(0x248), Site: 7},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(0x250), Site: 8},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(0x258), Site: 9},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(0x260), Site: 10},
		&sim.Unlock{M: 1},
		&sim.MemAccess{Write: true, Addr: sim.Fixed(0x280), Site: 11},
		&sim.MemAccess{Addr: sim.Fixed(0x2c0), Site: 12},
	}
	p := &sim.Program{Name: "example", Workers: [][]sim.Instr{body}}
	sim.Dump(os.Stdout, instrument.ForTxRace(p, instrument.DefaultOptions()))
	// Output:
	// program "example" (1 workers)
	// worker 0:
	//   xbegin (5 accesses)
	//   store  [0x100] @site 1 hooked
	//   load   [0x140] @site 2 hooked
	//   store  [0x180] @site 3 hooked
	//   load   [0x1c0] @site 4 hooked
	//   store  [0x200] @site 5 hooked
	//   xend
	//   lock m1
	//   xbegin (5 accesses)
	//   store  [0x240] @site 6 hooked
	//   store  [0x248] @site 7 hooked
	//   store  [0x250] @site 8 hooked
	//   store  [0x258] @site 9 hooked
	//   store  [0x260] @site 10 hooked
	//   xend
	//   unlock m1
	//   xbegin (2 accesses small)
	//   store  [0x280] @site 11 hooked
	//   load   [0x2c0] @site 12 hooked
	//   xend
}
