// Package txrace is a Go reproduction of "TxRace: Efficient Data Race
// Detection Using Commodity Hardware Transactional Memory" (Zhang, Lee,
// Jung — ASPLOS 2016).
//
// The paper's system instruments C/C++ programs with LLVM and detects data
// races in two phases: a fast path that repurposes Intel TSX's conflict
// detection to flag potential races at near-zero cost, and an on-demand
// slow path that rolls conflicting regions back and re-executes them under
// a software happens-before detector to pinpoint racy instructions and
// discard cache-line false sharing.
//
// Since portable Go exposes neither raw threads nor TSX intrinsics, this
// reproduction rebuilds the entire stack as a deterministic simulation —
// see DESIGN.md for the substitution table and internal/... for the
// packages:
//
//	internal/sim         multithreaded-program IR + discrete-event engine
//	internal/htm         best-effort RTM model (conflicts, capacity, aborts)
//	internal/cache       set-associative tracking structures
//	internal/clock       vector clocks / FastTrack epochs
//	internal/shadow      shadow memory (exact and TSan-style bounded)
//	internal/detect      happens-before detector + sampling baseline
//	internal/instrument  the compile-time transactionalization pass
//	internal/core        the TxRace runtime and comparison runtimes
//	internal/workload    synthetic PARSEC + Apache stand-ins
//	internal/experiment  drivers for every table and figure of §8
//
// bench_test.go exposes one benchmark per table/figure plus ablations;
// cmd/txbench regenerates the paper's artifacts from the command line.
package txrace
