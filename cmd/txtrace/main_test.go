package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// buildTxtrace compiles the command once per test into a temp dir.
func buildTxtrace(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "txtrace")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building txtrace: %v\n%s", err, out)
	}
	return bin
}

// writeTraceFile serializes a tiny trace in the given wire version and
// returns the raw bytes and a path holding the first n bytes of them.
func writeTraceFile(t *testing.T, dir string, v1 bool, cut int) (string, int) {
	t.Helper()
	tr := trace.FromEvents("clipped",
		trace.Event{Kind: trace.KFork, TID: 0, Other: 1},
		trace.Event{Kind: trace.KAccess, TID: 1, Write: true, Site: 3, Addr: 0x40},
		trace.Event{Kind: trace.KAccess, TID: 0, Site: 4, Addr: 0x40},
	)
	var buf bytes.Buffer
	var err error
	if v1 {
		_, err = tr.WriteToV1(&buf)
	} else {
		_, err = tr.WriteTo(&buf)
	}
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if cut > 0 {
		raw = raw[:len(raw)-cut]
	}
	path := filepath.Join(dir, "in.trace")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, len(raw)
}

// TestAnalyzeRejectsCorruptTraces pins the CLI contract of the hardening
// satellite: txtrace -in on a garbage or truncated file exits non-zero with
// a single stderr line naming the wire version and byte offset of the
// failure — never a panic, never a silent short read reported as success.
func TestAnalyzeRejectsCorruptTraces(t *testing.T) {
	bin := buildTxtrace(t)
	dir := t.TempDir()

	garbage := filepath.Join(dir, "garbage.trace")
	if err := os.WriteFile(garbage, []byte("definitely not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	v1path, _ := writeTraceFile(t, t.TempDir(), true, 13) // cut mid-record
	v2path, _ := writeTraceFile(t, t.TempDir(), false, 2) // cut mid-record

	cases := []struct {
		name string
		path string
		want []string
	}{
		{"garbage", garbage, []string{"txtrace:", "bad magic"}},
		{"truncated-v1", v1path, []string{"txtrace:", "wire v1", "offset", "unexpected EOF"}},
		{"truncated-v2", v2path, []string{"txtrace:", "wire v2", "offset", "unexpected EOF"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, "-in", tc.path)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 1 {
				t.Fatalf("exit = %v, want exit code 1\nstderr: %s", err, stderr.String())
			}
			msg := strings.TrimSuffix(stderr.String(), "\n")
			if strings.ContainsRune(msg, '\n') {
				t.Fatalf("stderr is not one line:\n%s", stderr.String())
			}
			for _, want := range tc.want {
				if !strings.Contains(msg, want) {
					t.Fatalf("stderr %q lacks %q", msg, want)
				}
			}
			if strings.Contains(stderr.String(), "panic") {
				t.Fatalf("command panicked:\n%s", stderr.String())
			}
		})
	}

	// Control: the untruncated trace analyzes cleanly.
	good, _ := writeTraceFile(t, t.TempDir(), false, 0)
	out, err := exec.Command(bin, "-in", good).CombinedOutput()
	if err != nil {
		t.Fatalf("valid trace rejected: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "happens-before:") {
		t.Fatalf("analyze output missing detector line:\n%s", out)
	}
}
