// Command txtrace records an execution trace of an evaluation application
// and analyzes traces offline — the record-now-analyze-later workflow of the
// offline-analysis detectors the paper's related work surveys (§9).
//
//	txtrace -app vips -out vips.trace            # record
//	txtrace -in vips.trace                       # offline happens-before
//	txtrace -in vips.trace -shards 8             # sharded parallel detection
//	txtrace -in vips.trace -detector lockset     # offline Eraser
//	txtrace -in vips.trace -detector both        # precision comparison
//
// -shards N runs the internal/server address-sharded detector on N shards
// (bounded by -jobs workers); its race output is byte-identical to the
// single-shard path at every shard and worker count.
//
// Recording supports the shared observability flags: -telemetry serves live
// /metrics, /snapshot and /attrib while the recording run executes, and
// -flight-out arms the post-mortem flight recorder.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		app      = flag.String("app", "", "application to record")
		out      = flag.String("out", "", "write the recorded trace here")
		in       = flag.String("in", "", "analyze this trace offline")
		detector = flag.String("detector", "hb", "offline detector: hb | lockset | both")
		shards   = flag.Int("shards", 1, "address shards for parallel happens-before detection")
	)
	common := cli.AddFlags()
	obsFlags := cli.AddObsFlags()
	flag.Parse()
	if err := common.Validate(); err != nil {
		fatal(err)
	}
	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be >= 1, got %d", *shards))
	}

	switch {
	case *app != "":
		if err := recordApp(common, obsFlags, *app, *out); err != nil {
			fatal(err)
		}
	case *in != "":
		if err := analyze(*in, *detector, *shards, common.Jobs); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -app (record) or -in (analyze)"))
	}
}

func recordApp(common *cli.Common, obsFlags *cli.ObsFlags, name, out string) error {
	w, built, err := common.Build(name)
	if err != nil {
		return err
	}
	ec := common.EngineConfig(w)
	var ob *cli.Observability
	if obsFlags.Enabled() {
		metrics := obs.NewMetrics()
		ledger := obs.NewLedger()
		if ob, err = obsFlags.Open(metrics, ledger); err != nil {
			return err
		}
		defer ob.Close()
		ec.Obs = obs.New(ob.Sink(), metrics)
		ec.Obs.AttachLedger(ledger)
	}
	rec := trace.NewRecorder(name)
	res, err := sim.NewEngine(ec).Run(instrument.ForTSan(built.Prog), rec)
	if err != nil {
		ob.OnError(err)
		return err
	}
	fmt.Printf("recorded %s: %d events from %d instructions\n",
		name, rec.T.Len(), res.Instructions)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := rec.T.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, n)
	return nil
}

func analyze(path, detector string, shards, jobs int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadFrom(f)
	if err != nil {
		return err
	}
	fmt.Printf("trace %q: %d events\n", tr.Name, tr.Len())

	if detector == "hb" || detector == "both" {
		if shards > 1 {
			rep, err := server.ReplaySharded(tr, shards, jobs)
			if err != nil {
				return err
			}
			fmt.Printf("happens-before: %d races\n", rep.RaceCount())
			for _, r := range rep.Races() {
				fmt.Printf("  %v\n", r)
			}
		} else {
			d := trace.Replay(tr)
			fmt.Printf("happens-before: %d races\n", d.RaceCount())
			for _, r := range d.Races() {
				fmt.Printf("  %v\n", r)
			}
		}
	}
	if detector == "lockset" || detector == "both" {
		d := trace.ReplayLockset(tr)
		fmt.Printf("lockset (Eraser): %d violations (may include false positives)\n",
			d.ViolationCount())
		for _, v := range d.Violations() {
			fmt.Printf("  %v\n", v)
		}
	}
	if detector != "hb" && detector != "lockset" && detector != "both" {
		return fmt.Errorf("unknown detector %q", detector)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "txtrace:", err)
	os.Exit(1)
}
