// Command txprofile performs the paper's offline loop-cut profiling run
// (§4.3) and prints the learned per-loop thresholds — the input
// TxRace-ProfLoopcut consumes. On the paper's toolchain this role was played
// by Last Branch Record profiling; here the runtime attributes capacity
// aborts to loops directly.
//
// -app takes one application, a comma-separated list, or "all"; multiple
// applications profile in parallel on an internal/runner worker pool
// (bounded by -jobs), with results printed in the order given.
//
//	txprofile -app swaptions
//	txprofile -app swaptions,vips,bodytrack -jobs 4
//	txprofile -app all -threads 8 -scale 2 -seed 7
//
// The shared observability flags apply to the profiling runs: -telemetry
// serves the pool's merged metrics and attribution ledger live, -flight-out
// arms the post-mortem flight recorder.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/cmd/internal/cli"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "", "application(s) to profile: name, comma-separated list, or \"all\"")
	common := cli.AddFlags()
	obsFlags := cli.AddObsFlags()
	flag.Parse()
	if err := common.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "txprofile:", err)
		os.Exit(1)
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "txprofile: missing -app")
		os.Exit(1)
	}

	var apps []*workload.Workload
	if *app == "all" {
		apps = workload.All()
	} else {
		for _, name := range strings.Split(*app, ",") {
			w, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "txprofile:", err)
				os.Exit(1)
			}
			apps = append(apps, w)
		}
	}

	var parent *obs.Observer
	var ob *cli.Observability
	if obsFlags.Enabled() {
		metrics := obs.NewMetrics()
		ledger := obs.NewLedger()
		var err error
		if ob, err = obsFlags.Open(metrics, ledger); err != nil {
			fmt.Fprintln(os.Stderr, "txprofile:", err)
			os.Exit(1)
		}
		defer ob.Close()
		parent = obs.New(ob.Sink(), metrics)
		parent.AttachLedger(ledger)
	}

	plan := runner.NewPlan(common.Jobs, parent)
	handles := make([]*runner.Handle, len(apps))
	for i, w := range apps {
		w := w
		handles[i] = plan.Add(runner.Job{Workload: w.Name, Runtime: "profile", Seed: common.Seed, Observe: true,
			Do: func(j *runner.Job) (any, error) {
				built := w.Build(common.Threads, common.Scale)
				ec := common.EngineConfig(w)
				ec.Obs = j.Obs
				return instrument.Profile(built.Prog, ec, core.Options{SlowScale: w.SlowScale, Obs: j.Obs, HTM: common.HTMConfig()})
			},
		})
	}
	if err := plan.Run(); err != nil {
		ob.OnError(err)
		fmt.Fprintln(os.Stderr, "txprofile:", err)
		os.Exit(1)
	}

	for i, w := range apps {
		if i > 0 {
			fmt.Println()
		}
		write(w.Name, handles[i].Value().(core.LoopThresholds), common.Seed)
	}
}

func write(name string, prof core.LoopThresholds, seed uint64) {
	if len(prof) == 0 {
		fmt.Printf("%s: no capacity-aborting loops found; ProfLoopcut has nothing to do\n", name)
		return
	}
	ids := make([]sim.LoopID, 0, len(prof))
	for id := range prof {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("%s: loop-cut thresholds from profiling run (seed %d)\n", name, seed)
	tb := &report.Table{Header: []string{"loop", "threshold (iterations per transaction)"}}
	for _, id := range ids {
		tb.Add(uint32(id), prof[id])
	}
	tb.Write(os.Stdout)
}
