// Command txprofile performs the paper's offline loop-cut profiling run
// (§4.3) for one application and prints the learned per-loop thresholds —
// the input TxRace-ProfLoopcut consumes. On the paper's toolchain this role
// was played by Last Branch Record profiling; here the runtime attributes
// capacity aborts to loops directly.
//
//	txprofile -app swaptions
//	txprofile -app swaptions -threads 8 -scale 2 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/cmd/internal/cli"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	app := flag.String("app", "", "application to profile")
	common := cli.AddFlags()
	flag.Parse()
	if *app == "" {
		fmt.Fprintln(os.Stderr, "txprofile: missing -app")
		os.Exit(1)
	}
	w, built, err := common.Build(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txprofile:", err)
		os.Exit(1)
	}

	prof, err := instrument.Profile(built.Prog, common.EngineConfig(w), core.Options{SlowScale: w.SlowScale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "txprofile:", err)
		os.Exit(1)
	}

	if len(prof) == 0 {
		fmt.Printf("%s: no capacity-aborting loops found; ProfLoopcut has nothing to do\n", w.Name)
		return
	}
	ids := make([]sim.LoopID, 0, len(prof))
	for id := range prof {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("%s: loop-cut thresholds from profiling run (seed %d)\n", w.Name, common.Seed)
	tb := &report.Table{Header: []string{"loop", "threshold (iterations per transaction)"}}
	for _, id := range ids {
		tb.Add(uint32(id), prof[id])
	}
	tb.Write(os.Stdout)
}
