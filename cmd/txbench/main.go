// Command txbench regenerates the paper's evaluation artifacts. Each table
// and figure of §8 has an experiment id:
//
//	txbench -exp table1            # Table 1: stats + overheads, all apps
//	txbench -exp table2            # Table 2: cost-effectiveness
//	txbench -exp fig7              # overhead breakdown
//	txbench -exp fig8              # scalability (2/4/8 threads)
//	txbench -exp fig9              # loop-cut optimization schemes
//	txbench -exp fig10             # distinct races across runs (vips)
//	txbench -exp fig11             # cost-effectiveness vs sampling
//	txbench -exp fig12 / fig13     # bodytrack overhead/recall vs sampling
//	txbench -exp precision         # extension: lockset (Eraser) vs TSan
//	txbench -exp shadow            # extension: bounded TSan shadow cells (§5)
//	txbench -exp detectability     # extension: per-race detection frequency
//	txbench -exp chaos (or -chaos) # extension: fault-injection sweep (recall
//	                               # + overhead vs intensity, soundness check)
//	txbench -exp attrib            # extension: cycle-attribution profile
//	                               # (measured Figure 6/9 phase breakdown)
//	txbench -exp backends          # extension: HTM conflict backend matrix
//	                               # (dir/tag/bounded x workloads)
//	txbench -exp threads           # extension: threads-scaling curve
//	                               # (sparse/delta clocks vs dense reference)
//	txbench -exp all               # everything
//
// Use -app to restrict table1/table2/fig7/fig9 to one application, -scale to
// enlarge the workloads, -trials to average over seeds, and -seed to move
// the whole experiment to a different schedule. Every experiment executes
// its runs as an internal/runner job plan on a worker pool: -jobs bounds the
// pool (default GOMAXPROCS), and output is byte-identical at any -jobs value
// because results and metrics merge in plan order. Baseline runs and ProfCut
// profiles are memoized across jobs and across experiment ids within one
// invocation. With -metrics-out, each experiment id runs with a fresh
// internal/obs metrics registry attached and the file receives a JSON map of
// experiment id -> metrics snapshot.
//
// With -telemetry, one HTTP endpoint serves /metrics (Prometheus text
// exposition), /snapshot (JSON) and /attrib (attribution ledger) for the
// experiment currently running; -telemetry-linger keeps the process (and the
// endpoint, pointed at the last experiment's registry) alive after the run,
// for scrapes that arrive late. -flight-out arms the post-mortem flight
// recorder. Telemetry is read-only: experiment output is byte-identical with
// it on or off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/bench"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "table1", "experiment id (table1, table2, fig7..fig13, all)")
		chaos      = flag.Bool("chaos", false, "run the chaos fault-injection sweep (shorthand for -exp chaos)")
		app        = flag.String("app", "", "restrict to one application")
		trials     = flag.Int("trials", 1, "trials to average over")
		format     = flag.String("format", "text", "output format: text | json")
		metricsOut = flag.String("metrics-out", "", "write per-experiment metrics snapshots (JSON map) here")
		benchOut   = flag.String("bench-out", "", "run the micro benchmark suite, time each experiment, write BENCH JSON here")
		benchGate  = flag.Bool("bench-gate", false, "with -bench-out: exit nonzero if the micro suite fails the allocation regression gate")
		benchBase  = flag.String("bench-baseline", "", "with -bench-out -bench-gate: also gate htm/access rows against this committed BENCH_<n>.json trajectory")
		threadsCts = flag.String("threads-counts", "", "comma-separated thread counts for -exp threads and the bench threads_scaling section (default 64,256,1024)")
		shardsCts  = flag.String("shards", "1,4,8", "comma-separated shard counts for the bench shard_scaling section")
		linger     = flag.Duration("telemetry-linger", 0, "with -telemetry: keep serving this long after the experiments finish")
	)
	common := cli.AddFlags()
	obsFlags := cli.AddObsFlags()
	flag.Parse()
	if err := common.Validate(); err != nil {
		fatal(err)
	}

	cfg := common.ExperimentConfig()
	cfg.Trials = *trials

	counts, err := parseCounts(*threadsCts)
	if err != nil {
		fatal(err)
	}
	shardCounts, err := parseShards(*shardsCts)
	if err != nil {
		fatal(err)
	}

	apps := workload.All()
	if *app != "" {
		w, err := workload.ByName(*app)
		if err != nil {
			fatal(err)
		}
		apps = []*workload.Workload{w}
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "precision", "shadow", "detectability", "chaos", "attrib", "backends", "threads"}
	}
	if *chaos {
		ids = []string{"chaos"}
	}

	ob, err := obsFlags.Open(nil, nil)
	if err != nil {
		fatal(err)
	}
	defer ob.Close()

	// One fresh registry (and attribution ledger) per experiment id, so each
	// snapshot describes exactly the runs that experiment performed; the
	// telemetry endpoint and flight recorder re-point at the current pair.
	snapshots := map[string]obs.Snapshot{}
	var expTimes []benchExperiment
	for _, id := range ids {
		rcfg := cfg
		if *metricsOut != "" || obsFlags.Enabled() {
			metrics := obs.NewMetrics()
			ledger := obs.NewLedger()
			rcfg.Obs = obs.New(ob.Sink(), metrics)
			rcfg.Obs.AttachLedger(ledger)
			ob.SetTarget(metrics, ledger)
		}
		start := time.Now()
		if err := run(id, rcfg, apps, counts, *format); err != nil {
			ob.OnError(err)
			fatal(err)
		}
		expTimes = append(expTimes, benchExperiment{
			ID:     id,
			WallMs: report.FormatFixed(float64(time.Since(start).Microseconds())/1000, 2),
		})
		if *metricsOut != "" {
			snapshots[id] = rcfg.Obs.Metrics().Snapshot()
		}
	}
	if *metricsOut != "" {
		if err := writeSnapshots(*metricsOut, snapshots); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics %s (%d experiments)\n", *metricsOut, len(snapshots))
	}
	if *benchOut != "" {
		ecfg := cfg
		ecfg.Obs = nil
		if err := writeBench(*benchOut, expTimes, *benchGate, *benchBase, ecfg, apps, counts, shardCounts); err != nil {
			fatal(err)
		}
	}
	if obsFlags.Telemetry != "" && *linger > 0 {
		fmt.Fprintf(os.Stderr, "telemetry lingering %v on http://%s/metrics\n", *linger, ob.Telemetry.Addr())
		time.Sleep(*linger)
	}
}

// benchExperiment is one experiment's wall-clock measurement in the -bench-out
// file. Wall time is inherently noisy; fixed-precision formatting keeps the
// file shape stable so trajectory diffs highlight only the numbers.
type benchExperiment struct {
	ID     string `json:"id"`
	WallMs string `json:"wall_ms"`
}

// benchFile is the -bench-out JSON layout, versioned by Schema. The micro
// suite pairs map/* (pre-refactor hash-map shadow layouts, kept in-tree as
// reference implementations) with paged/* variants of the same workload, so
// one file documents the before/after trajectory of the hot-path rebuild.
// v2 adds per-backend htm/access/* micro rows and the table1_per_app
// end-to-end section: one row per (application, conflict backend) from a
// real backend-matrix run. v3 adds detect/join/{dense,sparse} scaling micro
// rows plus the threads_scaling section: the txscale curve from a real
// experiment.RunThreads run, with the sparse/dense cross-check recorded.
// v4 adds detect/shard/{1,4,8} micro rows, the wire section (bytes/event
// for both trace wire versions), and the shard_scaling section: end-to-end
// sharded-replay events/sec per shard count.
type benchFile struct {
	Schema         string            `json:"schema"`
	Micro          []bench.Result    `json:"micro"`
	Wire           []bench.WireRow   `json:"wire"`
	ShardScaling   []bench.ShardRow  `json:"shard_scaling"`
	Table1PerApp   []benchE2E        `json:"table1_per_app"`
	ThreadsScaling []benchThreadsRow `json:"threads_scaling"`
	Experiments    []benchExperiment `json:"experiments"`
}

// benchThreadsRow is one thread count of the scaling curve: deterministic
// behaviour (races, checks, clock-representation counters, the sparse≡dense
// cross-check) plus the normalized detection overhead.
type benchThreadsRow struct {
	Threads    int    `json:"threads"`
	Races      int    `json:"races"`
	Checks     uint64 `json:"checks"`
	Overhead   string `json:"overhead"`
	Promotions uint64 `json:"clock_promotions"`
	Collapses  uint64 `json:"clock_collapses"`
	Fallbacks  uint64 `json:"clock_fallbacks"`
	DenseMatch bool   `json:"dense_match"`
}

// benchE2E is one end-to-end (application, backend) row: overhead over the
// uninstrumented baseline and recall against planted ground truth, from
// experiment.RunBackends.
type benchE2E struct {
	App      string `json:"app"`
	Backend  string `json:"backend"`
	Overhead string `json:"overhead"`
	Recall   string `json:"recall"`
	SlowRate string `json:"slow_rate"`
}

func writeBench(path string, exps []benchExperiment, gate bool, baselinePath string, cfg experiment.Config, apps []*workload.Workload, counts, shardCounts []int) error {
	fmt.Println("running micro benchmark suite...")
	micro := bench.RunMicro()
	wire, err := bench.WireRows()
	if err != nil {
		return err
	}
	fmt.Println("running shard-scaling throughput...")
	shardRows, err := bench.ShardScaling(shardCounts)
	if err != nil {
		return err
	}
	fmt.Println("running backend matrix for end-to-end rows...")
	matrix, err := experiment.RunBackends(cfg, apps)
	if err != nil {
		return err
	}
	var e2e []benchE2E
	for _, r := range matrix.Rows {
		e2e = append(e2e, benchE2E{
			App: r.App.Name, Backend: r.Backend,
			Overhead: report.FormatFixed(r.Overhead, 2),
			Recall:   report.FormatFixed(r.Recall, 2),
			SlowRate: report.FormatFixed(r.SlowRate, 2),
		})
	}
	fmt.Println("running threads-scaling curve...")
	th, err := experiment.RunThreads(cfg, counts)
	if err != nil {
		return err
	}
	var trows []benchThreadsRow
	for _, r := range th.Rows {
		trows = append(trows, benchThreadsRow{
			Threads: r.Threads, Races: r.Races, Checks: r.Checks,
			Overhead:   report.FormatFixed(r.Overhead, 2),
			Promotions: r.Clock.Promotions, Collapses: r.Clock.Collapses,
			Fallbacks: r.Clock.Fallbacks, DenseMatch: r.DenseMatch,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(benchFile{Schema: "txrace-bench/v4", Micro: micro, Wire: wire, ShardScaling: shardRows, Table1PerApp: e2e, ThreadsScaling: trows, Experiments: exps})
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("wrote bench %s (%d micro, %d e2e, %d threads, %d experiments)\n", path, len(micro), len(e2e), len(trows), len(exps))
	if gate {
		if err := bench.Gate(micro); err != nil {
			return err
		}
		if baselinePath != "" {
			base, err := readBenchBaseline(baselinePath)
			if err != nil {
				return err
			}
			if err := bench.GateBaseline(micro, base); err != nil {
				return err
			}
		}
		fmt.Println("bench gate: ok")
	}
	return nil
}

// readBenchBaseline loads the micro rows of a committed trajectory file
// (any schema version) for GateBaseline.
func readBenchBaseline(path string) ([]bench.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("bench baseline %s: %w", path, err)
	}
	return bf.Micro, nil
}

func writeSnapshots(path string, snaps map[string]obs.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// parseCounts parses the -threads-counts list; empty means the driver's
// DefaultThreadCounts.
func parseCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -threads-counts entry %q (want integers >= 2)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseShards parses the -shards list (shard counts may be 1).
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards entry %q (want integers >= 1)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(id string, cfg experiment.Config, apps []*workload.Workload, counts []int, format string) error {
	var text func()
	var data any
	switch id {
	case "table1":
		t, err := experiment.RunTable1(cfg, apps)
		if err != nil {
			return err
		}
		text, data = func() { t.WriteTable1(os.Stdout) }, t.JSON()
	case "table2":
		t, err := experiment.RunTable1(cfg, apps)
		if err != nil {
			return err
		}
		text, data = func() { t.WriteTable2(os.Stdout) }, t.JSON()
	case "fig7":
		f, err := experiment.RunFig7(cfg, apps)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "fig8":
		f, err := experiment.RunFig8(cfg, apps)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "fig9":
		f, err := experiment.RunFig9(cfg, apps)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "fig10":
		f, err := experiment.RunFig10(cfg)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "fig11":
		f, err := experiment.RunFig11(cfg)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "fig12", "fig13":
		f, err := experiment.RunFig1213(cfg)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "precision":
		f, err := experiment.RunPrecision(cfg, apps)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "detectability":
		f, err := experiment.RunDetectability(cfg, apps, 5)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "shadow":
		f, err := experiment.RunShadow(cfg, apps)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "attrib":
		f, err := experiment.RunAttrib(cfg, apps)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	case "backends":
		// The matrix sweeps every backend itself; the flag-selected backend
		// only chooses what the *other* experiment ids run under.
		f, err := experiment.RunBackends(cfg, apps)
		if err != nil {
			return err
		}
		text, data = func() { f.WriteBackends(os.Stdout) }, f.JSON()
	case "threads":
		// The curve always runs txscale (the only workload calibrated to
		// arbitrary thread counts); -app and -threads do not apply here,
		// -threads-counts selects the points.
		f, err := experiment.RunThreads(cfg, counts)
		if err != nil {
			return err
		}
		text, data = func() { f.WriteThreads(os.Stdout) }, f.JSON()
	case "chaos":
		// An explicit -app restriction carries through; the unrestricted
		// default is the curated ChaosSuite, not every application.
		capps := apps
		if len(capps) != 1 {
			capps = nil
		}
		f, err := experiment.RunChaos(cfg, capps, nil)
		if err != nil {
			return err
		}
		text, data = func() { f.Write(os.Stdout) }, f.JSON()
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"experiment": id, "data": data})
	}
	text()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "txbench:", err)
	os.Exit(1)
}
