// Command txserved is the streaming detection service: it listens on a TCP
// or unix socket, accepts internal/trace wire streams (v1 or v2) from many
// concurrent clients, detects races on the address-sharded parallel core,
// and answers each stream with a JSON report.
//
//	txserved -listen 127.0.0.1:7777 -shards 8            # serve
//	txserved -connect 127.0.0.1:7777 -in vips.trace      # act as a client
//	txserved -listen /tmp/txd.sock -net unix             # unix socket
//
// Client mode streams a recorded trace file (optionally -clients N copies
// concurrently) and prints each report's races in txtrace's output format,
// so CI can diff served detection against offline `txtrace -in`.
//
// The shared observability flags apply: -telemetry serves live /metrics
// with server.events_per_sec, server.queue.depth, server.shed and the other
// server.* instruments while the service runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"

	"repro/cmd/internal/cli"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		listen  = flag.String("listen", "", "serve on this address")
		network = flag.String("net", "tcp", "listener network: tcp | unix")
		connect = flag.String("connect", "", "client mode: stream traces to this address")
		in      = flag.String("in", "", "client mode: trace file to stream")
		clients = flag.Int("clients", 1, "client mode: concurrent copies to stream")
		shards  = flag.Int("shards", 4, "address shards per detection session")
		workers = flag.Int("workers", 0, "detection workers per session (0 = shards)")
		batch   = flag.Int("batch", server.DefaultBatchSize, "accesses per shard batch")
		queue   = flag.Int("queue", server.DefaultQueueBatches, "per-worker queue capacity in batches")
		noShed  = flag.Bool("no-shed", false, "disable the overload governor (block instead of sampling)")
	)
	obsFlags := cli.AddObsFlags()
	flag.Parse()
	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be >= 1, got %d", *shards))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0 (0 = one per shard), got %d", *workers))
	}

	switch {
	case *listen != "":
		if err := serve(obsFlags, *network, *listen, server.Config{
			Shards: *shards, Workers: *workers,
			BatchSize: *batch, QueueBatches: *queue, NoShed: *noShed,
		}); err != nil {
			fatal(err)
		}
	case *connect != "":
		if err := runClients(*connect, *in, *clients); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -listen (serve) or -connect (client)"))
	}
}

func serve(obsFlags *cli.ObsFlags, network, addr string, cfg server.Config) error {
	metrics := obs.NewMetrics()
	cfg.Metrics = metrics
	if obsFlags.Enabled() {
		ob, err := obsFlags.Open(metrics, obs.NewLedger())
		if err != nil {
			return err
		}
		defer ob.Close()
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	fmt.Printf("txserved listening on %s (%d shards/session)\n", ln.Addr(), max(cfg.Shards, 1))
	srv := server.New(cfg)
	return srv.Serve(ln)
}

// runClients streams the trace file to the server from `clients` concurrent
// connections and prints each response in txtrace's analyze format.
func runClients(addr, path string, clients int) error {
	if path == "" {
		return fmt.Errorf("client mode needs -in <trace file>")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if clients < 1 {
		clients = 1
	}
	responses := make([]*server.Response, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			responses[i], errs[i] = streamOnce(addr, data)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}
	// All clients streamed the same trace; print one report in txtrace's
	// format (so CI can diff), then per-client consistency.
	r := responses[0]
	if r.Error != "" {
		return fmt.Errorf("server error: %s", r.Error)
	}
	fmt.Printf("trace %q: %d events\n", r.Name, r.Events)
	fmt.Printf("happens-before: %d races\n", r.RaceCount)
	for _, rc := range r.Races {
		fmt.Printf("  %s\n", rc.Text)
	}
	fmt.Printf("analyzed %d, shed %d (coverage %s, sampled=%v)\n",
		r.Analyzed, r.Shed, r.Coverage, r.Sampled)
	for i, o := range responses[1:] {
		if o.Error != "" {
			return fmt.Errorf("client %d: server error: %s", i+1, o.Error)
		}
		if o.RaceCount != r.RaceCount {
			return fmt.Errorf("client %d found %d races, client 0 found %d",
				i+1, o.RaceCount, r.RaceCount)
		}
	}
	if clients > 1 {
		fmt.Printf("%d concurrent clients agree\n", clients)
	}
	return nil
}

func streamOnce(addr string, data []byte) (*server.Response, error) {
	network := "tcp"
	if _, err := os.Stat(addr); err == nil {
		network = "unix"
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if _, err := c.Write(data); err != nil {
		return nil, err
	}
	var resp server.Response
	if err := json.NewDecoder(c).Decode(&resp); err != nil {
		return nil, fmt.Errorf("reading report: %w", err)
	}
	return &resp, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "txserved:", err)
	os.Exit(1)
}
