package cli

import (
	"strings"
	"testing"
)

// TestValidateBackend pins the -backend contract: every shipped backend
// name is accepted, and anything else is a one-line error naming both the
// rejected value and the full valid set — never a silent fall-through to a
// default.
func TestValidateBackend(t *testing.T) {
	for _, tc := range []struct {
		backend string
		ok      bool
	}{
		{"dir", true},
		{"tag", true},
		{"bounded", true},
		{"", true}, // unset means the default machine
		{"directory", false},
		{"refscan", false}, // test-only resolver, not a CLI backend
		{"hashset", false},
		{"DIR", false},
		{"dir,tag", false},
	} {
		c := &Common{Backend: tc.backend}
		err := c.Validate()
		if tc.ok {
			if err != nil {
				t.Errorf("Validate(backend=%q) = %v, want nil", tc.backend, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Validate(backend=%q) = nil, want error", tc.backend)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, tc.backend) {
			t.Errorf("Validate(backend=%q) error %q does not name the rejected value", tc.backend, msg)
		}
		for _, name := range []string{"dir", "tag", "bounded"} {
			if !strings.Contains(msg, name) {
				t.Errorf("Validate(backend=%q) error %q does not list valid backend %q", tc.backend, msg, name)
			}
		}
		if strings.Contains(msg, "\n") {
			t.Errorf("Validate(backend=%q) error spans multiple lines: %q", tc.backend, msg)
		}
	}
}

// TestExperimentConfigCarriesBackend pins that the flag value reaches the
// experiment layer.
func TestExperimentConfigCarriesBackend(t *testing.T) {
	c := &Common{Threads: 4, Scale: 1, Seed: 1, Backend: "bounded"}
	if got := c.ExperimentConfig().Backend; got != "bounded" {
		t.Fatalf("ExperimentConfig().Backend = %q, want %q", got, "bounded")
	}
}
