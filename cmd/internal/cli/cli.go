// Package cli holds the flag and setup plumbing shared by the txrace
// command family (txrace, txbench, txprofile, txtrace): the common
// seed/threads/scale flags, workload resolution, and the engine/experiment
// configuration they all derive from those flags.
package cli

import (
	"flag"

	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Common is the flag set every command shares.
type Common struct {
	Threads int
	Scale   int
	Seed    uint64
	Jobs    int
}

// AddFlags registers the shared -threads/-scale/-seed/-jobs flags on the
// process flag set and returns their destination. Call before flag.Parse.
func AddFlags() *Common {
	c := &Common{}
	flag.IntVar(&c.Threads, "threads", 4, "worker threads")
	flag.IntVar(&c.Scale, "scale", 1, "workload scale factor")
	flag.Uint64Var(&c.Seed, "seed", 1, "scheduler seed")
	flag.IntVar(&c.Jobs, "jobs", 0, "parallel jobs for experiment plans (0 = GOMAXPROCS); results are identical at any value")
	return c
}

// Build resolves the named workload and builds it at the flag-selected
// thread count and scale.
func (c *Common) Build(name string) (*workload.Workload, *workload.Built, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	return w, w.Build(c.Threads, c.Scale), nil
}

// EngineConfig returns sim.DefaultConfig with the flag seed applied and the
// workload's interrupt-period override honoured.
func (c *Common) EngineConfig(w *workload.Workload) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = c.Seed
	if w.InterruptEvery != 0 {
		cfg.InterruptEvery = w.InterruptEvery
	}
	return cfg
}

// ExperimentConfig seeds an experiment.Config from the shared flags. The
// returned config carries one shared memo cache, so every experiment run
// from it (e.g. txbench -exp all) reuses memoized baselines and profiles.
func (c *Common) ExperimentConfig() experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.Threads = c.Threads
	cfg.Scale = c.Scale
	cfg.Seed = c.Seed
	cfg.Jobs = c.Jobs
	cfg.Cache = experiment.NewCache()
	return cfg
}
