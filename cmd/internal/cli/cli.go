// Package cli holds the flag and setup plumbing shared by the txrace
// command family (txrace, txbench, txprofile, txtrace): the common
// seed/threads/scale flags, workload resolution, and the engine/experiment
// configuration they all derive from those flags.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/htm"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Common is the flag set every command shares.
type Common struct {
	Threads int
	Scale   int
	Seed    uint64
	Jobs    int
	Backend string
}

// AddFlags registers the shared -threads/-scale/-seed/-jobs/-backend flags
// on the process flag set and returns their destination. Call before
// flag.Parse, and Validate after.
func AddFlags() *Common {
	c := &Common{}
	flag.IntVar(&c.Threads, "threads", 4, "worker threads")
	flag.IntVar(&c.Scale, "scale", 1, "workload scale factor")
	flag.Uint64Var(&c.Seed, "seed", 1, "scheduler seed")
	flag.IntVar(&c.Jobs, "jobs", 0, "parallel jobs for experiment plans (0 = GOMAXPROCS); results are identical at any value")
	flag.StringVar(&c.Backend, "backend", "dir", "HTM conflict backend: dir (line-ownership directory), tag (per-line owner tags), bounded (entry-capped sets)")
	return c
}

// Validate rejects flag values the commands must not silently default: an
// unknown -backend is a one-line error naming the valid set. Call after
// flag.Parse.
func (c *Common) Validate() error {
	if !htm.ValidBackend(c.Backend) {
		return fmt.Errorf("unknown -backend %q (valid: %s)", c.Backend, strings.Join(htm.BackendNames(), ", "))
	}
	return nil
}

// HTMConfig translates the -backend flag into the htm.Config carried by
// core.Options, for commands that assemble runtime options directly rather
// than through the experiment layer. "dir" (and unset) return the zero
// config — core substitutes the default machine, bit-identical to builds
// that predate backend selection.
func (c *Common) HTMConfig() htm.Config {
	var hc htm.Config
	if c.Backend != "" && c.Backend != "dir" {
		hc.Backend = c.Backend
	}
	return hc
}

// Build resolves the named workload and builds it at the flag-selected
// thread count and scale. Thread counts beyond a generator's calibrated
// range are a one-line error naming the apps that do scale.
func (c *Common) Build(name string) (*workload.Workload, *workload.Built, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	if err := w.CheckThreads(c.Threads); err != nil {
		return nil, nil, err
	}
	return w, w.Build(c.Threads, c.Scale), nil
}

// EngineConfig returns sim.DefaultConfig with the flag seed applied and the
// workload's interrupt-period override honoured.
func (c *Common) EngineConfig(w *workload.Workload) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = c.Seed
	if w.InterruptEvery != 0 {
		cfg.InterruptEvery = w.InterruptEvery
	}
	return cfg
}

// ObsFlags is the flag set of the opt-in observability stack every command
// shares: the live telemetry endpoint and the post-mortem flight recorder.
type ObsFlags struct {
	Telemetry string
	FlightOut string
	FlightBuf int
}

// AddObsFlags registers -telemetry/-flight-out/-flight-buf on the process
// flag set. Call before flag.Parse.
func AddObsFlags() *ObsFlags {
	f := &ObsFlags{}
	flag.StringVar(&f.Telemetry, "telemetry", "", "serve live /metrics, /snapshot and /attrib on this address (e.g. :9464; empty = off)")
	flag.StringVar(&f.FlightOut, "flight-out", "", "arm the flight recorder: dump a post-mortem bundle here on program error, governor global trip, or SIGQUIT")
	flag.IntVar(&f.FlightBuf, "flight-buf", obs.DefaultFlightCapacity, "flight-recorder event ring capacity")
	return f
}

// Enabled reports whether any observability flag asks for the stack.
func (f *ObsFlags) Enabled() bool { return f.Telemetry != "" || f.FlightOut != "" }

// Observability is the assembled opt-in stack: a telemetry server and/or an
// armed flight recorder, sharing one registry/ledger pair. The zero value is
// the disabled state; every method on it is a no-op.
type Observability struct {
	Telemetry *obs.Telemetry
	Flight    *obs.FlightRecorder
	disarm    func()
}

// Open builds the stack the flags ask for around a metrics registry and an
// attribution ledger (either may be nil). The telemetry server starts
// listening immediately and prints its address; the flight recorder arms
// SIGQUIT. Close releases both.
func (f *ObsFlags) Open(m *obs.Metrics, led *obs.Ledger) (*Observability, error) {
	o := &Observability{}
	if f.FlightOut != "" {
		o.Flight = obs.NewFlightRecorder(f.FlightOut, f.FlightBuf, m, led)
		o.disarm = o.Flight.ArmSignal()
	}
	if f.Telemetry != "" {
		o.Telemetry = obs.NewTelemetry(m, led)
		if err := o.Telemetry.Serve(f.Telemetry); err != nil {
			o.Close()
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry listening on http://%s/metrics\n", o.Telemetry.Addr())
	}
	return o, nil
}

// Sink returns the flight recorder as an event sink, or nil when none is
// armed — safe to hand straight to obs.MultiSink.
func (o *Observability) Sink() obs.Sink {
	if o == nil || o.Flight == nil {
		return nil
	}
	return o.Flight
}

// SetTarget repoints both the telemetry endpoint and the flight recorder at
// a new registry/ledger pair — multi-experiment drivers call it as each
// experiment starts, so live scrapes and post-mortem dumps describe the
// experiment currently running.
func (o *Observability) SetTarget(m *obs.Metrics, led *obs.Ledger) {
	if o == nil {
		return
	}
	if o.Telemetry != nil {
		o.Telemetry.SetTarget(m, led)
	}
	if o.Flight != nil {
		o.Flight.SetTarget(m, led)
	}
}

// OnError gives the flight recorder its shot at a run that failed: a
// *sim.ProgramError anywhere in err's chain triggers a "program-error" dump
// (the recorder only sees events, never errors, so the cmd must call this
// from its failure path). Reports whether a bundle was written.
func (o *Observability) OnError(err error) bool {
	if o == nil || o.Flight == nil || err == nil {
		return false
	}
	var pe *sim.ProgramError
	if !errors.As(err, &pe) {
		return false
	}
	if derr := o.Flight.Dump("program-error"); derr != nil {
		fmt.Fprintln(os.Stderr, "flight recorder:", derr)
		return false
	}
	fmt.Fprintf(os.Stderr, "flight recorder: wrote %s (program error)\n", o.Flight.Path())
	return true
}

// Close disarms the signal handler and stops the telemetry server.
func (o *Observability) Close() {
	if o == nil {
		return
	}
	if o.disarm != nil {
		o.disarm()
	}
	if o.Telemetry != nil {
		_ = o.Telemetry.Close()
	}
}

// ExperimentConfig seeds an experiment.Config from the shared flags. The
// returned config carries one shared memo cache, so every experiment run
// from it (e.g. txbench -exp all) reuses memoized baselines and profiles.
func (c *Common) ExperimentConfig() experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.Threads = c.Threads
	cfg.Scale = c.Scale
	cfg.Seed = c.Seed
	cfg.Jobs = c.Jobs
	cfg.Backend = c.Backend
	cfg.Cache = experiment.NewCache()
	return cfg
}
