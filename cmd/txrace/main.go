// Command txrace runs one evaluation application under a chosen detector
// and prints what it found and what it cost:
//
//	txrace -app vips                      # two-phase TxRace (default)
//	txrace -app vips -detector tsan       # full happens-before detection
//	txrace -app vips -detector sampling -rate 0.5
//	txrace -app vips -detector none       # uninstrumented baseline
//
// The -cut flag selects TxRace's capacity-abort handling: none (NoOpt),
// dyn (DynLoopcut), or prof (ProfLoopcut, the default — runs the profiling
// pass first, as the paper does).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/experiment"
	"repro/internal/instrument"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "", "application to run (see -list)")
		detector = flag.String("detector", "txrace", "none | tsan | sampling | txrace")
		rate     = flag.Float64("rate", 0.1, "sampling rate for -detector sampling")
		cut      = flag.String("cut", "prof", "TxRace loop-cut scheme: none | dyn | prof")
		threads  = flag.Int("threads", 4, "worker threads")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Uint64("seed", 1, "scheduler seed")
		list     = flag.Bool("list", false, "list applications and exit")
		dump     = flag.Bool("dump", false, "print the instrumented IR instead of running")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return
	}
	if *app == "" {
		fatal(fmt.Errorf("missing -app (use -list to see applications)"))
	}
	w, err := workload.ByName(*app)
	if err != nil {
		fatal(err)
	}

	if *dump {
		w, err := workload.ByName(*app)
		if err != nil {
			fatal(err)
		}
		built := w.Build(*threads, *scale)
		sim.Dump(os.Stdout, instrument.ForTxRace(built.Prog, instrument.DefaultOptions()))
		return
	}

	cfg := experiment.DefaultConfig()
	cfg.Threads = *threads
	cfg.Scale = *scale
	cfg.Seed = *seed
	switch *cut {
	case "none":
		cfg.LoopCut = core.NoCut
	case "dyn":
		cfg.LoopCut = core.DynCut
	case "prof":
		cfg.LoopCut = core.ProfCut
	default:
		fatal(fmt.Errorf("unknown -cut %q", *cut))
	}

	base, err := experiment.RunBaseline(w, cfg, cfg.Seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: baseline %d cycles (%d threads, scale %d, seed %d)\n",
		w.Name, base.Makespan, cfg.Threads, cfg.Scale, cfg.Seed)

	switch *detector {
	case "none":
		return
	case "tsan":
		r, err := experiment.RunTSan(w, cfg, cfg.Seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("TSan: %d cycles (%.2fx), %d shadow checks, %d races\n",
			r.Makespan, float64(r.Makespan)/float64(base.Makespan), r.Checks, len(r.Races))
		printRaces(r.Races)
	case "sampling":
		r, err := experiment.RunSampling(w, cfg, cfg.Seed, *rate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("TSan+Sampling %.0f%%: %d cycles (%.2fx), %d races\n",
			*rate*100, r.Makespan, float64(r.Makespan)/float64(base.Makespan), len(r.Races))
		printRaces(r.Races)
	case "txrace":
		r, err := experiment.RunTxRace(w, cfg, cfg.Seed)
		if err != nil {
			fatal(err)
		}
		st := r.Stats
		fmt.Printf("TxRace (%v): %d cycles (%.2fx), %d races\n",
			cfg.LoopCut, r.Makespan, float64(r.Makespan)/float64(base.Makespan), len(r.Races))
		tb := &report.Table{Header: []string{"committed", "conflict", "artificial", "capacity", "unknown", "retries", "loop cuts"}}
		tb.Add(st.CommittedTxns, st.ConflictAborts, st.ArtificialAborts,
			st.CapacityAborts, st.UnknownAborts, st.Retries, st.LoopCuts)
		tb.Write(os.Stdout)
		printRaces(r.Races)
	default:
		fatal(fmt.Errorf("unknown -detector %q", *detector))
	}
}

func printRaces(keys []detect.PairKey) {
	for _, k := range keys {
		fmt.Printf("  race: sites %d and %d\n", k.A, k.B)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "txrace:", err)
	os.Exit(1)
}
