// Command txrace runs one evaluation application under a chosen detector
// and prints what it found and what it cost:
//
//	txrace -app vips                      # two-phase TxRace (default)
//	txrace -app vips -detector tsan       # full happens-before detection
//	txrace -app vips -detector sampling -rate 0.5
//	txrace -app vips -detector none       # uninstrumented baseline
//
// The -cut flag selects TxRace's capacity-abort handling: none (NoOpt),
// dyn (DynLoopcut), or prof (ProfLoopcut, the default — runs the profiling
// pass first, as the paper does).
//
// Observability (internal/obs):
//
//	txrace -app vips -trace-out t.json    # Chrome trace_event JSON
//	txrace -app vips -metrics-out m.json  # counters/gauges/histograms
//	txrace -app vips -timeline            # per-thread text timeline
//	txrace -app vips -attrib              # cycle-attribution profile
//	txrace -app vips -telemetry :9464     # live /metrics /snapshot /attrib
//	txrace -app vips -flight-out f.json   # post-mortem flight recorder
//
// The trace loads in chrome://tracing or https://ui.perfetto.dev; one
// simulated cycle renders as one microsecond, one track per simulated
// thread, with TxFail global-abort episodes on their own track.
//
// -attrib prints where every virtual cycle of the measured run went (the
// paper's Figure 6/9 breakdown, measured rather than inferred): per-thread
// phase shares plus the abort-cause mix. -telemetry serves the same data
// live over HTTP while the run executes; -flight-out keeps a bounded ring
// of recent events and dumps a post-mortem bundle on a malformed-program
// error, a governor global trip, or SIGQUIT.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		app        = flag.String("app", "", "application to run (see -list)")
		detector   = flag.String("detector", "txrace", "none | tsan | sampling | txrace")
		rate       = flag.Float64("rate", 0.1, "sampling rate for -detector sampling")
		cut        = flag.String("cut", "prof", "TxRace loop-cut scheme: none | dyn | prof")
		faultLevel = flag.Float64("fault", 0, "inject the standard fault plan at this intensity (0..1) with the fallback governor engaged")
		list       = flag.Bool("list", false, "list applications and exit")
		dump       = flag.Bool("dump", false, "print the instrumented IR instead of running")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON of the run here")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot JSON of the run here")
		timeline   = flag.Bool("timeline", false, "print a per-thread event timeline after the run")
		traceBuf   = flag.Int("trace-buf", obs.DefaultTracerCapacity, "event ring-buffer capacity")
		attrib     = flag.Bool("attrib", false, "print the cycle-attribution profile (per-thread phase shares + abort causes) after the run")
	)
	common := cli.AddFlags()
	obsFlags := cli.AddObsFlags()
	flag.Parse()
	if err := common.Validate(); err != nil {
		fatal(err)
	}

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		for _, name := range workload.ScalingNames() {
			fmt.Println(name + "  (scales to arbitrary -threads)")
		}
		for _, name := range workload.GoNames() {
			fmt.Println(name + "  (compiled Go source; ignores -threads/-scale)")
		}
		return
	}
	if *app == "" {
		fatal(fmt.Errorf("missing -app (use -list to see applications)"))
	}
	w, built, err := common.Build(*app)
	if err != nil {
		fatal(err)
	}

	if *dump {
		sim.Dump(os.Stdout, instrument.ForTxRace(built.Prog, instrument.DefaultOptions()))
		return
	}

	cfg := common.ExperimentConfig()
	switch *cut {
	case "none":
		cfg.LoopCut = core.NoCut
	case "dyn":
		cfg.LoopCut = core.DynCut
	case "prof":
		cfg.LoopCut = core.ProfCut
	default:
		fatal(fmt.Errorf("unknown -cut %q", *cut))
	}

	// Observability: a ring tracer feeds the Chrome trace and the timeline,
	// a metrics registry feeds the snapshot and the telemetry endpoint, a
	// ledger feeds the attribution profile, a flight recorder tees the event
	// stream. Only attached when asked for — the disabled path is a
	// nil-check in the runtime.
	var tracer *obs.Tracer
	var metrics *obs.Metrics
	var ledger *obs.Ledger
	if *traceOut != "" || *timeline {
		tracer = obs.NewTracer(*traceBuf)
	}
	if *metricsOut != "" || obsFlags.Enabled() {
		metrics = obs.NewMetrics()
	}
	if *attrib || obsFlags.Enabled() {
		ledger = obs.NewLedger()
	}
	ob, err := obsFlags.Open(metrics, ledger)
	if err != nil {
		fatal(err)
	}
	defer ob.Close()
	if sink := obs.MultiSink(tracerOrNil(tracer), ob.Sink()); sink != nil || metrics != nil || ledger != nil {
		cfg.Obs = obs.New(sink, metrics)
		cfg.Obs.AttachLedger(ledger)
	}
	// fail is fatal plus the flight recorder's shot at a program error.
	fail := func(err error) {
		ob.OnError(err)
		fatal(err)
	}

	base, err := experiment.RunBaseline(w, cfg, cfg.Seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: baseline %d cycles (%d threads, scale %d, seed %d)\n",
		w.Name, base.Makespan, cfg.Threads, cfg.Scale, cfg.Seed)

	switch *detector {
	case "none":
	case "tsan":
		r, err := experiment.RunTSan(w, cfg, cfg.Seed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("TSan: %d cycles (%.2fx), %d shadow checks, %d races\n",
			r.Makespan, float64(r.Makespan)/float64(base.Makespan), r.Checks, len(r.Races))
		printRaces(r.Races)
	case "sampling":
		r, err := experiment.RunSampling(w, cfg, cfg.Seed, *rate)
		if err != nil {
			fail(err)
		}
		fmt.Printf("TSan+Sampling %.0f%%: %d cycles (%.2fx), %d races\n",
			*rate*100, r.Makespan, float64(r.Makespan)/float64(base.Makespan), len(r.Races))
		printRaces(r.Races)
	case "txrace":
		var r *experiment.TxRaceRun
		if *faultLevel > 0 {
			r, err = experiment.RunTxRaceFault(w, cfg, cfg.Seed,
				fault.StandardPlan(cfg.Seed, *faultLevel), experiment.ChaosGovernor())
		} else {
			r, err = experiment.RunTxRace(w, cfg, cfg.Seed)
		}
		if err != nil {
			fail(err)
		}
		st := r.Stats
		fmt.Printf("TxRace (%v): %d cycles (%.2fx), %d races\n",
			cfg.LoopCut, r.Makespan, float64(r.Makespan)/float64(base.Makespan), len(r.Races))
		tb := &report.Table{Header: []string{"committed", "conflict", "artificial", "capacity", "unknown", "retries", "loop cuts"}}
		tb.Add(st.CommittedTxns, st.ConflictAborts, st.ArtificialAborts,
			st.CapacityAborts, st.UnknownAborts, st.Retries, st.LoopCuts)
		tb.Write(os.Stdout)
		if *faultLevel > 0 {
			fmt.Printf("faults injected: %v\n", r.Fault)
			gt := &report.Table{Header: []string{"forced slow", "gov trips", "probes", "recoveries", "global", "unknown retries"}}
			gt.Add(st.ForcedSlow, st.GovernorTrips, st.GovernorProbes,
				st.GovernorRecoveries, st.GovernorGlobal, st.UnknownRetries)
			gt.Write(os.Stdout)
		}
		printRaces(r.Races)
	default:
		fatal(fmt.Errorf("unknown -detector %q", *detector))
	}

	if *attrib && ledger != nil {
		fmt.Println("cycle attribution:")
		obs.WriteAttrib(os.Stdout, ledger.Snapshot())
	}
	if tracer != nil && tracer.Dropped() > 0 {
		cfg.Obs.TraceStats(tracer.Dropped())
		fmt.Fprintf(os.Stderr, "txrace: trace ring dropped %d oldest events (raise -trace-buf)\n", tracer.Dropped())
	}
	if *timeline && tracer != nil {
		obs.WriteTimeline(os.Stdout, tracer.Events())
	}
	if *traceOut != "" {
		if err := writeChromeTrace(*traceOut, tracer); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace %s (%d events)\n", *traceOut, tracer.Len())
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics %s\n", *metricsOut)
	}
}

// tracerOrNil keeps the Sink interface nil when no tracer exists (a typed
// nil *Tracer inside a non-nil interface would defeat the sink check).
func tracerOrNil(t *obs.Tracer) obs.Sink {
	if t == nil {
		return nil
	}
	return t
}

func writeChromeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.WriteChromeTraceFrom(f, tracer)
}

func writeMetrics(path string, m *obs.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Snapshot().WriteJSON(f)
}

func printRaces(keys []detect.PairKey) {
	for _, k := range keys {
		fmt.Printf("  race: sites %d and %d\n", k.A, k.B)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "txrace:", err)
	os.Exit(1)
}
