package txrace_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/htm"
	"repro/internal/instrument"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The benchmarks below regenerate the paper's evaluation artifacts (§8):
// one benchmark per table and figure, plus ablations of the design choices
// DESIGN.md calls out. Measured shape metrics are attached with
// b.ReportMetric, so `go test -bench . -benchmem` prints, next to the
// wall-clock cost of regenerating each artifact, the reproduction's key
// numbers (overheads in x, recall, races).

func benchCfg() experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.Trials = 1
	return cfg
}

func mustApp(b *testing.B, name string) *workload.Workload {
	b.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkTable1 regenerates Table 1 over all 14 applications and reports
// the geometric-mean overheads (paper: TSan 11.68x, TxRace 4.65x).
func BenchmarkTable1(b *testing.B) {
	var last *experiment.Table1
	for i := 0; i < b.N; i++ {
		t, err := experiment.RunTable1(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.GeoTSanOverhead, "tsan-ovh-x")
	b.ReportMetric(last.GeoTxRaceOverhead, "txrace-ovh-x")
}

// BenchmarkTable1PerApp regenerates each application's Table 1 row
// separately so per-app costs and overheads are visible.
func BenchmarkTable1PerApp(b *testing.B) {
	for _, w := range workload.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var last *experiment.Table1
			for i := 0; i < b.N; i++ {
				t, err := experiment.RunTable1(benchCfg(), []*workload.Workload{w})
				if err != nil {
					b.Fatal(err)
				}
				last = t
			}
			r := last.Rows[0]
			b.ReportMetric(r.TSanOverhead, "tsan-ovh-x")
			b.ReportMetric(r.TxRaceOverhead, "txrace-ovh-x")
			b.ReportMetric(float64(r.TxRaceRaces), "races")
		})
	}
}

// BenchmarkTable2 regenerates the cost-effectiveness table (paper geomeans:
// normalized overhead 0.38, recall 0.95, cost-effectiveness 2.38).
func BenchmarkTable2(b *testing.B) {
	var last *experiment.Table1
	for i := 0; i < b.N; i++ {
		t, err := experiment.RunTable1(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.GeoNormOverhead, "norm-ovh")
	b.ReportMetric(last.GeoRecall, "recall")
	b.ReportMetric(last.GeoCostEff, "cost-eff")
}

// BenchmarkFig7 regenerates the overhead breakdown and reports the geomean
// of the pure fast-path component (paper: 17%).
func BenchmarkFig7(b *testing.B) {
	var last *experiment.Fig7
	for i := 0; i < b.N; i++ {
		f, err := experiment.RunFig7(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	var xs []float64
	for _, r := range last.Rows {
		xs = append(xs, 1+r.XbeginXend)
	}
	b.ReportMetric(stats.Geomean(xs)-1, "fastpath-ovh")
}

// BenchmarkFig8 regenerates the 2/4/8-thread scalability sweep on the
// interrupt-sensitive subset.
func BenchmarkFig8(b *testing.B) {
	apps := []*workload.Workload{
		mustApp(b, "fluidanimate"), mustApp(b, "canneal"), mustApp(b, "streamcluster"),
	}
	var last *experiment.Fig8
	for i := 0; i < b.N; i++ {
		f, err := experiment.RunFig8(benchCfg(), apps)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	var unk4, unk8 float64
	for _, r := range last.Rows {
		unk4 += float64(r.Unknowns[4])
		unk8 += float64(r.Unknowns[8])
	}
	b.ReportMetric(unk8/max(unk4, 1), "unknown-8v4")
}

// BenchmarkFig9 regenerates the loop-cut comparison on the
// capacity-dominated applications.
func BenchmarkFig9(b *testing.B) {
	apps := []*workload.Workload{
		mustApp(b, "swaptions"), mustApp(b, "bodytrack"), mustApp(b, "vips"),
	}
	var last *experiment.Fig9
	for i := 0; i < b.N; i++ {
		f, err := experiment.RunFig9(benchCfg(), apps)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	var no, prof []float64
	for _, r := range last.Rows {
		no = append(no, r.NoOpt)
		prof = append(prof, r.Prof)
	}
	b.ReportMetric(stats.Geomean(no), "noopt-ovh-x")
	b.ReportMetric(stats.Geomean(prof), "prof-ovh-x")
}

// BenchmarkFig10 regenerates the vips distinct-races-across-runs experiment
// (paper: ~79 per run, cumulative 112 by run 7).
func BenchmarkFig10(b *testing.B) {
	var last *experiment.Fig10
	for i := 0; i < b.N; i++ {
		f, err := experiment.RunFig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.ReportMetric(float64(last.PerRun[0]), "races-run1")
	b.ReportMetric(float64(last.Cumulative[6]), "races-cum7")
}

// BenchmarkFig11 regenerates the cost-effectiveness-vs-sampling comparison
// over the race-bearing applications.
func BenchmarkFig11(b *testing.B) {
	var last *experiment.Fig11
	for i := 0; i < b.N; i++ {
		f, err := experiment.RunFig11(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	var tx []float64
	for _, r := range last.Rows {
		tx = append(tx, r.TxRace)
	}
	b.ReportMetric(stats.Geomean(tx), "txrace-ce")
}

// BenchmarkFig12And13 regenerates the bodytrack sampling sweep and reports
// TxRace's operating point (paper: overhead 0.69, recall 0.75).
func BenchmarkFig12And13(b *testing.B) {
	var last *experiment.Fig1213
	for i := 0; i < b.N; i++ {
		f, err := experiment.RunFig1213(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.ReportMetric(last.TxRaceOverhead, "txrace-ovh")
	b.ReportMetric(last.TxRaceRecall, "txrace-recall")
}

// ---- Ablations of the design choices DESIGN.md calls out. ----

func runOnce(b *testing.B, w *workload.Workload, iOpts instrument.Options, opts core.Options, seed uint64) (*core.TxRace, *sim.Result) {
	b.Helper()
	built := w.Build(4, 1)
	opts.SlowScale = w.SlowScale
	rt := core.NewTxRace(opts)
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	if w.InterruptEvery != 0 {
		cfg.InterruptEvery = w.InterruptEvery
	}
	res, err := sim.NewEngine(cfg).Run(instrument.ForTxRace(built.Prog, iOpts), rt)
	if err != nil {
		b.Fatal(err)
	}
	return rt, res
}

func baselineOnce(b *testing.B, w *workload.Workload, seed uint64) *sim.Result {
	b.Helper()
	built := w.Build(4, 1)
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	if w.InterruptEvery != 0 {
		cfg.InterruptEvery = w.InterruptEvery
	}
	res, err := sim.NewEngine(cfg).Run(built.Prog, &core.Baseline{})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationTxFail measures what the global-abort protocol buys:
// recall with and without artificially aborting in-flight transactions
// (§3 / §6 reason 2).
func BenchmarkAblationTxFail(b *testing.B) {
	// fluidanimate's regions are short relative to the abort+rollback
	// latency: without the TxFail global abort, the conflicting partner
	// commits before the slow-path replay re-touches the variable, and the
	// race is lost — the protocol's contribution is directly visible.
	w := mustApp(b, "fluidanimate")
	for _, disabled := range []bool{false, true} {
		name := "txfail-on"
		if disabled {
			name = "txfail-off"
		}
		b.Run(name, func(b *testing.B) {
			var races float64
			for i := 0; i < b.N; i++ {
				rt, _ := runOnce(b, w, instrument.DefaultOptions(),
					core.Options{DisableTxFail: disabled, LoopCut: core.DynCut}, uint64(i)+1)
				races = float64(rt.Detector().RaceCount())
			}
			b.ReportMetric(races, "races")
		})
	}
}

// BenchmarkAblationK sweeps the small-region threshold (paper: K = 5).
// Small K pushes tiny regions onto the HTM (management cost); large K sends
// real work through the software detector.
func BenchmarkAblationK(b *testing.B) {
	w := mustApp(b, "streamcluster")
	for _, k := range []int{1, 5, 20, 60} {
		b.Run("K="+itoa(k), func(b *testing.B) {
			var ovh float64
			for i := 0; i < b.N; i++ {
				base := baselineOnce(b, w, uint64(i)+1)
				_, res := runOnce(b, w, instrument.Options{K: k, LoopChecks: true},
					core.Options{LoopCut: core.DynCut}, uint64(i)+1)
				ovh = float64(res.Makespan) / float64(base.Makespan)
			}
			b.ReportMetric(ovh, "ovh-x")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationGranularity compares the real cache-line-granular HTM
// with an idealized word-granular one on the false-sharing-dominated
// application: conflicts (and their slow-path cost) largely disappear.
func BenchmarkAblationGranularity(b *testing.B) {
	w := mustApp(b, "dedup")
	for _, gran := range []struct {
		name  string
		shift int
	}{{"line64B", 6}, {"word8B", 3}} {
		b.Run(gran.name, func(b *testing.B) {
			var conflicts, ovh float64
			for i := 0; i < b.N; i++ {
				opts := core.Options{LoopCut: core.DynCut}
				opts.HTM = htm.DefaultConfig()
				opts.HTM.GranularityShift = gran.shift
				base := baselineOnce(b, w, uint64(i)+1)
				rt, res := runOnce(b, w, instrument.DefaultOptions(), opts, uint64(i)+1)
				conflicts = float64(rt.Stats().ConflictAborts)
				ovh = float64(res.Makespan) / float64(base.Makespan)
			}
			b.ReportMetric(conflicts, "conflicts")
			b.ReportMetric(ovh, "ovh-x")
		})
	}
}

// BenchmarkFutureHTMTargetedSlowPath evaluates the §9 "future HTM"
// extension: with a machine that exposes the conflicting address (as the
// paper envisions after TxIntro), conflict episodes monitor only the
// conflicting line. On the episode-heavy vips this collapses the slow-path
// cost while keeping conflict-line race detection.
func BenchmarkFutureHTMTargetedSlowPath(b *testing.B) {
	w := mustApp(b, "vips")
	for _, targeted := range []bool{false, true} {
		name := "commodity-rtm"
		if targeted {
			name = "future-htm"
		}
		b.Run(name, func(b *testing.B) {
			var ovh, races float64
			for i := 0; i < b.N; i++ {
				opts := core.Options{LoopCut: core.DynCut}
				opts.HTM = htm.DefaultConfig()
				if targeted {
					opts.HTM.ExposeConflictAddress = true
					opts.TargetedSlowPath = true
				}
				base := baselineOnce(b, w, uint64(i)+1)
				rt, res := runOnce(b, w, instrument.DefaultOptions(), opts, uint64(i)+1)
				ovh = float64(res.Makespan) / float64(base.Makespan)
				races = float64(rt.Detector().RaceCount())
			}
			b.ReportMetric(ovh, "ovh-x")
			b.ReportMetric(races, "races")
		})
	}
}

// BenchmarkAblationRetry sweeps the retry budget for pure-retry aborts
// (§4.2): zero budget degrades every transient abort into a slow region.
func BenchmarkAblationRetry(b *testing.B) {
	w := mustApp(b, "ferret")
	for _, budget := range []int{-1, 3, 10} {
		b.Run("budget"+itoa(max(budget, 0)), func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				opts := core.Options{LoopCut: core.DynCut, RetryOnlyFraction: 0.8}
				opts.RetryBudget = budget // -1 → effectively zero retries
				rt, _ := runOnce(b, w, instrument.DefaultOptions(), opts, uint64(i)+1)
				st := rt.Stats()
				slow = float64(st.SlowRegions[core.CauseUnknown])
			}
			b.ReportMetric(slow, "slow-regions")
		})
	}
}

// BenchmarkDetectorAlgorithms replays one recorded facesim trace through the
// detector-algorithm family: FastTrack (the slow path's algorithm, after
// [21]), the Djit⁺-style full-vector-clock detector it optimizes
// (MultiRace, [58]), the bounded-shadow TSan mode, and the Eraser lockset
// baseline — quantifying why the paper's slow path is built on FastTrack.
func BenchmarkDetectorAlgorithms(b *testing.B) {
	w := mustApp(b, "facesim")
	built := w.Build(4, 1)
	rec := trace.NewRecorder("facesim")
	cfg := sim.DefaultConfig()
	if w.InterruptEvery != 0 {
		cfg.InterruptEvery = w.InterruptEvery
	}
	if _, err := sim.NewEngine(cfg).Run(instrument.ForTSan(built.Prog), rec); err != nil {
		b.Fatal(err)
	}
	tr := rec.T

	b.Run("fasttrack", func(b *testing.B) {
		var races int
		for i := 0; i < b.N; i++ {
			races = trace.Replay(tr).RaceCount()
		}
		b.ReportMetric(float64(races), "races")
		b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("djit-vc", func(b *testing.B) {
		var races int
		for i := 0; i < b.N; i++ {
			races = trace.ReplayVC(tr).RaceCount()
		}
		b.ReportMetric(float64(races), "races")
		b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("lockset", func(b *testing.B) {
		var v int
		for i := 0; i < b.N; i++ {
			v = trace.ReplayLockset(tr).ViolationCount()
		}
		b.ReportMetric(float64(v), "reports")
		b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkAblationConflictPolicy compares RTM's requester-wins resolution
// against the responder-wins alternative from the conflict-management design
// space (Bobba et al., the paper's [7]). TxRace's TxFail protocol still
// functions under responder-wins (the non-transactional TxFail write cannot
// be refused), so detection holds; what shifts is who aborts and how much
// work each episode wastes.
func BenchmarkAblationConflictPolicy(b *testing.B) {
	w := mustApp(b, "fluidanimate")
	for _, responder := range []bool{false, true} {
		name := "requester-wins"
		if responder {
			name = "responder-wins"
		}
		b.Run(name, func(b *testing.B) {
			var ovh, races, conflicts float64
			for i := 0; i < b.N; i++ {
				opts := core.Options{LoopCut: core.DynCut}
				opts.HTM = htm.DefaultConfig()
				opts.HTM.ResponderWins = responder
				base := baselineOnce(b, w, uint64(i)+1)
				rt, res := runOnce(b, w, instrument.DefaultOptions(), opts, uint64(i)+1)
				ovh = float64(res.Makespan) / float64(base.Makespan)
				races = float64(rt.Detector().RaceCount())
				conflicts = float64(rt.Stats().ConflictAborts)
			}
			b.ReportMetric(ovh, "ovh-x")
			b.ReportMetric(races, "races")
			b.ReportMetric(conflicts, "conflicts")
		})
	}
}
